//! Scoped-thread parallelism utilities shared across the workspace.
//!
//! The container this workspace targets has no `rayon`; everything here is
//! built on `std::thread::scope`, which borrows closures instead of
//! requiring `'static` and joins all workers before returning. There is
//! deliberately **no thread pool**: workers are spawned per call and live
//! exactly as long as the call. Callers amortize spawn cost by
//! parallelizing coarse units of work (a whole circuit, a batch of trials)
//! rather than individual loop iterations.
//!
//! Provided here:
//!
//! - [`config`]: the process-wide execution configuration, read **once**
//!   from the environment ([`num_threads`] / [`num_shards`] are the
//!   convenience accessors, overridable with the `VARSAW_NUM_THREADS` and
//!   `VARSAW_NUM_SHARDS` environment variables);
//! - [`chunk_ranges`] / [`worker_range`]: balanced contiguous index ranges
//!   for partitioning an array across workers;
//! - [`scope_workers`]: scoped fan-out of indexed workers (the calling
//!   thread doubles as worker 0);
//! - [`for_each_chunk_mut`]: scoped fan-out over disjoint mutable chunks;
//! - [`SpinBarrier`]: a reusable spin-then-yield barrier for lockstep
//!   phases inside a [`scope_workers`] call;
//! - [`parallel_map`]: order-preserving parallel map over a work list.
//!
//! # Example
//!
//! ```
//! // Sum the squares of 0..1000 with one partial sum per worker.
//! let data: Vec<u64> = (0..1000).collect();
//! let workers = parallel::num_threads().min(4);
//! let mut partials = vec![0u64; workers];
//! parallel::for_each_chunk_mut(&mut partials, workers, |w, slot| {
//!     let range = parallel::worker_range(data.len(), workers, w);
//!     slot[0] = data[range].iter().map(|x| x * x).sum();
//! });
//! assert_eq!(partials.iter().sum::<u64>(), (0..1000u64).map(|x| x * x).sum());
//! ```

pub mod config;

pub use config::{
    warn_once, JOB_DEADLINE_MS_ENV, JOB_RETRIES_ENV, MAX_JOB_RETRIES, MAX_SHARDS, MAX_THREADS,
    NUM_SHARDS_ENV, NUM_THREADS_ENV, SCHED_WORKERS_ENV, SHARD_TRANSPORT_ENV, SHARD_TRANSPORT_NAMES,
};

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How a parallel kernel spreads its work across threads.
///
/// This is the workspace-wide dispatch seam: the statevector engine
/// (`qsim::Statevector::apply_circuit_with`, which re-exports this type)
/// and the Bayesian-reconstruction engine (`mitigation::Reconstructor`)
/// both take it, so one knob pins serial execution through a whole stack
/// (e.g. when many executors already run under [`parallel_map`]).
///
/// Each engine interprets the variants against its own cost model:
/// `Auto` goes threaded only above that engine's amortization threshold,
/// and `Threads(n)` requests are clamped to whatever partition the engine
/// can actually hand out. Engines guarantee that the choice never changes
/// results — serial and threaded paths are bit-identical.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Parallelism {
    /// Always run the serial kernels on the calling thread.
    Serial,
    /// Pick automatically: threaded with [`num_threads`] workers when the
    /// work is large enough to amortize thread spawns, serial otherwise.
    Auto,
    /// Request an explicit worker count. Engines clamp the request (the
    /// statevector engine rounds down to a power of two; the
    /// reconstruction engine caps at its chunk count); a resulting count
    /// of one falls back to serial.
    Threads(usize),
}

/// The number of worker threads parallel code should use.
///
/// Resolved from the `VARSAW_NUM_THREADS` environment variable — **read
/// once per process** and cached (see [`config`]); unset or empty values
/// fall back to [`std::thread::available_parallelism`], and invalid
/// values are reported on stderr instead of silently defaulting. The
/// result is clamped to `1..=`[`MAX_THREADS`].
///
/// # Examples
///
/// ```
/// std::env::set_var(parallel::NUM_THREADS_ENV, "3");
/// assert_eq!(parallel::num_threads(), 3);
/// // The configuration is cached: later environment changes are ignored.
/// std::env::remove_var(parallel::NUM_THREADS_ENV);
/// assert_eq!(parallel::num_threads(), 3);
/// ```
pub fn num_threads() -> usize {
    config::get().threads
}

/// The amplitude-plane shard-count override (a power of two), or `None`
/// to let engines size shards automatically.
///
/// Resolved from the `VARSAW_NUM_SHARDS` environment variable — read once
/// per process and cached, invalid values reported (see [`config`]). The
/// consumer is `qsim::shard`'s auto-sizing heuristic.
///
/// # Examples
///
/// ```
/// // Unset in this process: engines size shards automatically.
/// assert_eq!(parallel::num_shards(), None);
/// ```
pub fn num_shards() -> Option<usize> {
    config::get().shards
}

/// The worker count job schedulers should drain with: the
/// `VARSAW_SCHED_WORKERS` override when set, otherwise [`num_threads`].
///
/// Resolved once per process alongside the other knobs (see [`config`]).
/// Scheduler workers are a *concurrency* choice, not a correctness one —
/// `sched::JobQueue` results are bit-identical for any worker count — so
/// the override exists to decouple queue draining from the statevector
/// engine's thread count (e.g. many serial jobs side by side instead of
/// one threaded job at a time).
///
/// # Examples
///
/// ```
/// // Unset in this process: follows the engine thread count.
/// assert_eq!(parallel::sched_workers(), parallel::num_threads());
/// ```
pub fn sched_workers() -> usize {
    let config = config::get();
    config.sched_workers.unwrap_or(config.threads)
}

/// The shard-transport backend override, or `None` when unset (engines
/// then default to the zero-copy in-process backend).
///
/// Resolved from the `VARSAW_SHARD_TRANSPORT` environment variable — read
/// once per process and cached, unknown names reported with the valid set
/// (see [`config`]). The consumer is `qsim::transport`, which maps
/// [`config::ShardTransport::Local`] to its in-process handle-swap
/// backend and [`config::ShardTransport::Channel`] to its
/// message-passing rank-thread backend.
///
/// # Examples
///
/// ```
/// // Unset in this process: engines use the in-process default.
/// assert_eq!(parallel::shard_transport(), None);
/// ```
pub fn shard_transport() -> Option<config::ShardTransport> {
    config::get().shard_transport
}

/// The default per-job retry budget for transport failures, or `None`
/// when unset (jobs then run exactly once).
///
/// Resolved from the `VARSAW_JOB_RETRIES` environment variable — read
/// once per process and cached, capped at [`MAX_JOB_RETRIES`] (see
/// [`config`]). The consumer is `sched::JobQueue`, whose retry policy
/// defaults to this budget when the caller sets none explicitly.
///
/// # Examples
///
/// ```
/// // Unset in this process: jobs run once, failures surface directly.
/// assert_eq!(parallel::job_retries(), None);
/// ```
pub fn job_retries() -> Option<u32> {
    config::get().job_retries
}

/// The default per-job deadline in milliseconds, or `None` when unset
/// (jobs then have no deadline).
///
/// Resolved from the `VARSAW_JOB_DEADLINE_MS` environment variable —
/// read once per process and cached (see [`config`]). The consumer is
/// `sched::JobQueue`, which checks the deadline at session boundaries
/// (dispatch, between retry attempts, between measurements).
///
/// # Examples
///
/// ```
/// // Unset in this process: no deadline is enforced.
/// assert_eq!(parallel::job_deadline_ms(), None);
/// ```
pub fn job_deadline_ms() -> Option<u64> {
    config::get().job_deadline_ms
}

/// The runtime default of the stage-telemetry switch: `true` unless
/// `VARSAW_TELEMETRY` says otherwise.
///
/// Resolved once per process and cached (see [`config`]). The consumer
/// is the `telemetry` crate, which seeds its runtime recording switch
/// from this — and only in instrumented builds (its `enabled` feature);
/// uninstrumented binaries never record regardless of this value.
///
/// # Examples
///
/// ```
/// // Unset in this process: instrumented builds record by default.
/// assert!(parallel::telemetry_default());
/// ```
pub fn telemetry_default() -> bool {
    config::get().telemetry.unwrap_or(true)
}

/// The rolling window of runs `bench_diff --trend` keeps in
/// `BENCH_HISTORY.jsonl` and judges new runs against.
///
/// Resolved from the `VARSAW_BENCH_HISTORY_WINDOW` environment variable —
/// read once per process and cached, capped at
/// [`config::MAX_BENCH_HISTORY_WINDOW`], defaulting to
/// [`config::DEFAULT_BENCH_HISTORY_WINDOW`] (see [`config`]). The
/// consumer is the `bench` crate's trend gate.
///
/// # Examples
///
/// ```
/// // Unset in this process: the default window applies.
/// assert_eq!(
///     parallel::bench_history_window(),
///     parallel::config::DEFAULT_BENCH_HISTORY_WINDOW
/// );
/// ```
pub fn bench_history_window() -> usize {
    config::get()
        .bench_history_window
        .unwrap_or(config::DEFAULT_BENCH_HISTORY_WINDOW)
}

/// The contiguous index range worker `w` of `workers` owns in `0..len`.
///
/// Ranges are balanced (sizes differ by at most one element), disjoint,
/// and cover `0..len` exactly; workers beyond `len` receive empty ranges.
///
/// # Panics
///
/// Panics if `workers == 0` or `w >= workers`.
///
/// # Examples
///
/// ```
/// assert_eq!(parallel::worker_range(10, 4, 0), 0..3);
/// assert_eq!(parallel::worker_range(10, 4, 1), 3..6);
/// assert_eq!(parallel::worker_range(10, 4, 2), 6..8);
/// assert_eq!(parallel::worker_range(10, 4, 3), 8..10);
/// ```
pub fn worker_range(len: usize, workers: usize, w: usize) -> Range<usize> {
    assert!(workers > 0, "need at least one worker");
    assert!(w < workers, "worker index {w} out of {workers}");
    let base = len / workers;
    let rem = len % workers;
    let start = w * base + w.min(rem);
    let end = start + base + usize::from(w < rem);
    start..end
}

/// All [`worker_range`] partitions of `0..len` across `chunks` workers.
///
/// # Panics
///
/// Panics if `chunks == 0`.
///
/// # Examples
///
/// ```
/// let ranges = parallel::chunk_ranges(7, 3);
/// assert_eq!(ranges, vec![0..3, 3..5, 5..7]);
/// ```
pub fn chunk_ranges(len: usize, chunks: usize) -> Vec<Range<usize>> {
    (0..chunks).map(|w| worker_range(len, chunks, w)).collect()
}

/// Runs `f(worker_index)` on `workers` scoped threads and joins them all.
///
/// Worker 0 runs on the calling thread, so `workers == 1` spawns nothing
/// and is exactly a plain call of `f(0)`.
///
/// # Panics
///
/// Panics if `workers == 0`, or propagates a panic from any worker.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let hits = AtomicUsize::new(0);
/// parallel::scope_workers(4, |w| {
///     hits.fetch_add(w + 1, Ordering::Relaxed);
/// });
/// assert_eq!(hits.into_inner(), 1 + 2 + 3 + 4);
/// ```
pub fn scope_workers(workers: usize, f: impl Fn(usize) + Sync) {
    assert!(workers > 0, "need at least one worker");
    if workers == 1 {
        f(0);
        return;
    }
    std::thread::scope(|scope| {
        for w in 1..workers {
            let f = &f;
            scope.spawn(move || f(w));
        }
        f(0);
    });
}

/// Splits `data` into `workers` balanced contiguous chunks and runs
/// `f(worker_index, chunk)` on scoped threads, one chunk per worker.
///
/// The chunk handed to worker `w` is `data[worker_range(len, workers, w)]`,
/// so `f` can recover global indices from the worker index. Workers whose
/// range is empty still run with an empty slice.
///
/// # Panics
///
/// Panics if `workers == 0`, or propagates a panic from any worker.
///
/// # Examples
///
/// ```
/// let mut v = vec![0usize; 10];
/// parallel::for_each_chunk_mut(&mut v, 3, |w, chunk| {
///     let start = parallel::worker_range(10, 3, w).start;
///     for (k, x) in chunk.iter_mut().enumerate() {
///         *x = start + k; // the global index
///     }
/// });
/// assert_eq!(v, (0..10).collect::<Vec<_>>());
/// ```
pub fn for_each_chunk_mut<T: Send>(
    data: &mut [T],
    workers: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(workers > 0, "need at least one worker");
    let len = data.len();
    if workers == 1 {
        f(0, data);
        return;
    }
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut consumed = 0;
        for w in 0..workers {
            let take = worker_range(len, workers, w).len();
            debug_assert_eq!(worker_range(len, workers, w).start, consumed);
            let (chunk, tail) = rest.split_at_mut(take);
            rest = tail;
            consumed += take;
            let f = &f;
            if w + 1 == workers {
                f(w, chunk); // last chunk on the calling thread
            } else {
                scope.spawn(move || f(w, chunk));
            }
        }
    });
}

/// A reusable barrier for lockstep phases between scoped workers.
///
/// [`SpinBarrier::wait`] spins briefly and then yields, so it stays cheap
/// when every worker has its own core and degrades gracefully when the
/// machine is oversubscribed (e.g. a single-core CI container running many
/// workers). Unlike [`std::sync::Barrier`] there is no mutex or condvar in
/// the hot path — the statevector engine crosses a barrier per gate, so
/// wait latency matters more than idle efficiency.
///
/// All memory writes performed by any participating thread before `wait`
/// are visible to every thread after the corresponding `wait` returns.
///
/// # Examples
///
/// ```
/// use parallel::SpinBarrier;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let barrier = SpinBarrier::new(3);
/// let phase1 = AtomicUsize::new(0);
/// parallel::scope_workers(3, |_| {
///     phase1.fetch_add(1, Ordering::Relaxed);
///     barrier.wait();
///     // Every worker sees all three phase-1 increments here.
///     assert_eq!(phase1.load(Ordering::Relaxed), 3);
/// });
/// ```
pub struct SpinBarrier {
    total: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    /// A barrier for `total` participating threads.
    ///
    /// # Panics
    ///
    /// Panics if `total == 0`.
    pub fn new(total: usize) -> Self {
        assert!(total > 0, "barrier needs at least one participant");
        SpinBarrier {
            total,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// The number of participating threads.
    pub fn participants(&self) -> usize {
        self.total
    }

    /// Blocks until all `total` threads have called `wait` for the current
    /// generation, then releases them together.
    pub fn wait(&self) {
        if self.total == 1 {
            return;
        }
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            // Last arriver: reset the count, then open the next generation.
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::AcqRel);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                spins = spins.wrapping_add(1);
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Order-preserving parallel map: applies `f` to every item on up to
/// [`num_threads`] scoped worker threads and collects the results in input
/// order.
///
/// Items are claimed dynamically (an atomic cursor), so heterogeneous
/// per-item costs balance automatically. With one worker or one item this
/// degenerates to a sequential map with no thread spawns.
///
/// # Examples
///
/// ```
/// let doubled = parallel::parallel_map((0..100).collect::<Vec<_>>(), |&x| x * 2);
/// assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
/// ```
pub fn parallel_map<T: Sync, R: Send>(items: Vec<T>, f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = num_threads().min(n);
    if workers == 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let slots: Vec<std::sync::Mutex<&mut Option<R>>> =
        results.iter_mut().map(std::sync::Mutex::new).collect();
    scope_workers(workers, |_| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let r = f(&items[i]);
        **slots[i].lock().expect("slot lock") = Some(r);
    });
    drop(slots);
    results
        .into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn worker_ranges_partition_exactly() {
        for len in [0usize, 1, 7, 64, 1000] {
            for workers in [1usize, 2, 3, 8, 13] {
                let ranges = chunk_ranges(len, workers);
                assert_eq!(ranges.len(), workers);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, len);
                let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "unbalanced ranges {sizes:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn worker_range_checks_index() {
        worker_range(10, 2, 2);
    }

    #[test]
    fn scope_workers_runs_every_index_once() {
        let seen = AtomicU64::new(0);
        scope_workers(5, |w| {
            seen.fetch_add(1 << (8 * w), Ordering::Relaxed);
        });
        assert_eq!(seen.into_inner(), 0x01_01_01_01_01);
    }

    #[test]
    fn for_each_chunk_mut_covers_all_elements() {
        let mut v = vec![0u32; 17];
        for_each_chunk_mut(&mut v, 4, |_, chunk| {
            for x in chunk.iter_mut() {
                *x += 1;
            }
        });
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn for_each_chunk_mut_handles_more_workers_than_elements() {
        let mut v = vec![0u32; 2];
        for_each_chunk_mut(&mut v, 8, |_, chunk| {
            for x in chunk.iter_mut() {
                *x = 9;
            }
        });
        assert_eq!(v, vec![9, 9]);
    }

    #[test]
    fn spin_barrier_orders_phases() {
        let workers = 4;
        let barrier = SpinBarrier::new(workers);
        let counter = AtomicUsize::new(0);
        scope_workers(workers, |_| {
            for round in 1..=5usize {
                counter.fetch_add(1, Ordering::Relaxed);
                barrier.wait();
                assert_eq!(counter.load(Ordering::Relaxed), round * workers);
                barrier.wait();
            }
        });
    }

    #[test]
    fn single_thread_barrier_is_free() {
        let b = SpinBarrier::new(1);
        b.wait();
        b.wait();
        assert_eq!(b.participants(), 1);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..200).collect(), |&x: &i32| x * x);
        assert_eq!(out, (0..200).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty_is_empty() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn num_threads_is_at_least_one() {
        assert!(num_threads() >= 1);
        assert!(num_threads() <= MAX_THREADS);
    }
}
