//! # VarSaw — application-tailored measurement error mitigation for VQAs
//!
//! A from-scratch Rust implementation of *VarSaw* (Dangwal et al.,
//! ASPLOS 2023): JigSaw-style measurement error mitigation restructured for
//! variational quantum algorithms by removing two forms of redundancy:
//!
//! - **Spatial** ([`SpatialPlan`]): measurement subsets are generated for
//!   every Hamiltonian Pauli string *before* commutativity reduction, so
//!   repeated and covered subsets collapse into a near-constant set of
//!   small circuits (Fig.6: 21 JigSaw subsets → 9; 25× fewer on average,
//!   up to >1000× at scale).
//! - **Temporal** ([`GlobalScheduler`], [`TemporalPolicy`]): the expensive
//!   Global executions run only on a sparse, feedback-tuned schedule; in
//!   between, the previous iteration's mitigated Output-PMFs serve as the
//!   reconstruction priors (Fig.11).
//!
//! [`VarSawEvaluator`] combines both on top of the `vqe` substrate;
//! [`JigsawEvaluator`] provides the application-agnostic prior work for
//! comparison; [`run_method`] runs any of the paper's comparison methods
//! end to end; [`cost`] holds the Fig.8 scaling model.
//!
//! # Quickstart
//!
//! ```
//! use pauli::Hamiltonian;
//! use qnoise::DeviceModel;
//! use varsaw::{run_method, Method, RunSetup, TemporalPolicy};
//! use vqe::{EfficientSu2, Entanglement, VqeConfig};
//!
//! // A small Ising Hamiltonian on a noisy simulated device.
//! let h = Hamiltonian::from_pairs(2, &[(-1.0, "ZZ"), (-0.5, "XI"), (-0.5, "IX")]);
//! let setup = RunSetup::new(h, EfficientSu2::new(2, 1, Entanglement::Full),
//!                           DeviceModel::mumbai_like(), 42);
//! let config = VqeConfig { max_iterations: 30, max_circuits: None };
//! let outcome = run_method(&setup, Method::VarSaw(TemporalPolicy::default()), &config);
//! println!("energy: {:.4}", outcome.trace.converged_energy(0.2));
//! ```

pub mod cost;
mod engine;
mod run;
mod spatial;
mod temporal;

pub use engine::{JigsawEvaluator, VarSawEvaluator};
pub use run::{
    percent_gap_recovered, run_method, run_method_with, Method, MethodOutcome, RunSetup,
};
pub use spatial::{SpatialPlan, SpatialStats, WindowCoverage};
pub use temporal::{GlobalScheduler, TemporalPolicy};
