//! The analytic circuit-cost scaling model behind Fig.8.
//!
//! The paper illustrates how per-iteration circuit counts scale with the
//! number of qubits `Q`: Hamiltonian terms grow as `P ≈ 0.01·Q⁴`
//! (Section 3.2, after Gokhale et al.), traditional VQA executes `O(P)`
//! circuits,
//! JigSaw adds `O(P·Q)` subsets, and VarSaw runs `O(k·P)` Globals plus
//! `O(Q)` deduplicated subsets.

/// The modelled number of Hamiltonian Pauli terms at `q` qubits
/// (`P = 0.01·Q⁴`, floored at 1).
pub fn pauli_terms(q: usize) -> f64 {
    (0.01 * (q as f64).powi(4)).max(1.0)
}

/// Circuits per iteration for traditional VQA: one per post-commutation
/// term, `O(P)`.
pub fn traditional_cost(q: usize) -> f64 {
    pauli_terms(q)
}

/// The number of sliding windows on a `q`-qubit register at window size
/// `w`.
fn windows(q: usize, w: usize) -> f64 {
    (q.saturating_sub(w) + 1).max(1) as f64
}

/// The deduplicated subset count: at most one circuit per distinct non-
/// identity window basis, `(4ʷ − 1)` per window position — `O(Q)` for fixed
/// `w`.
fn varsaw_subsets(q: usize, w: usize) -> f64 {
    let distinct = (4f64.powi(w as i32) - 1.0) * windows(q, w);
    distinct.min(pauli_terms(q) * windows(q, w))
}

/// Circuits per iteration for JigSaw-for-VQA: a Global per term plus all
/// per-circuit windows, `O(P + P·Q) = O(Q⁵)`.
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn jigsaw_cost(q: usize, window: usize) -> f64 {
    assert!(window > 0, "window size must be positive");
    let p = pauli_terms(q);
    p + p * windows(q, window)
}

/// Circuits per iteration for VarSaw: Globals on a `k` fraction of
/// iterations plus the deduplicated subsets, `O(k·P + Q)`.
///
/// # Panics
///
/// Panics if `window == 0` or `k` is outside `[0, 1]`.
pub fn varsaw_cost(q: usize, k: f64, window: usize) -> f64 {
    assert!(window > 0, "window size must be positive");
    assert!(
        (0.0..=1.0).contains(&k),
        "global fraction must lie in [0, 1]"
    );
    k * pauli_terms(q) + varsaw_subsets(q, window)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pauli_terms_follow_q4() {
        assert_eq!(pauli_terms(10), 100.0);
        assert!((pauli_terms(100) - 1e6).abs() < 1e-6);
        assert_eq!(pauli_terms(1), 1.0, "floored at one");
    }

    #[test]
    fn jigsaw_is_about_q_times_traditional() {
        for q in [50, 100, 500, 1000] {
            let ratio = jigsaw_cost(q, 2) / traditional_cost(q);
            assert!((ratio - (q as f64)).abs() < 2.0, "ratio {ratio} at q={q}");
        }
    }

    #[test]
    fn varsaw_with_k1_tracks_traditional() {
        // The paper notes the k=1 VarSaw line overlaps traditional VQA at
        // scale: subsets are lower-order.
        for q in [100, 500, 1000] {
            let ratio = varsaw_cost(q, 1.0, 2) / traditional_cost(q);
            assert!(ratio < 1.1, "ratio {ratio} at q={q}");
            assert!(ratio >= 1.0);
        }
    }

    #[test]
    fn varsaw_with_small_k_beats_traditional() {
        for q in [100, 500, 1000] {
            assert!(varsaw_cost(q, 0.01, 2) < traditional_cost(q));
            assert!(varsaw_cost(q, 0.001, 2) < varsaw_cost(q, 0.01, 2));
        }
    }

    #[test]
    fn varsaw_is_at_least_q_below_jigsaw() {
        for q in [100, 500, 1000] {
            let factor = jigsaw_cost(q, 2) / varsaw_cost(q, 0.01, 2);
            assert!(factor > q as f64, "factor {factor} at q={q}");
        }
    }

    #[test]
    fn small_systems_do_not_underflow() {
        assert!(varsaw_cost(2, 0.5, 2) > 0.0);
        assert!(jigsaw_cost(2, 2) > 0.0);
    }
}
