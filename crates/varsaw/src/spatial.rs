//! VarSaw's spatial optimization: Commuting of Pauli String Subsets.
//!
//! JigSaw generates measurement subsets per circuit and is blind to the
//! application, so subsets repeat and commute across the Pauli strings of a
//! VQA Hamiltonian (Section 3.2). VarSaw instead generates subsets for
//! *every* Hamiltonian Pauli string first and only then applies
//! commutativity-based reduction (Fig.10, right) — deduplicating repeats
//! and absorbing covered subsets into covering ones, exactly the reduction
//! that takes Fig.6's 21 JigSaw subsets down to 9.
//!
//! The [`SpatialPlan`] also records, for every measurement-basis circuit
//! and every one of its reconstruction windows, *which* reduced subset
//! group serves it — at execution time the group's outcome distribution is
//! marginalized onto the window, so one executed circuit feeds many
//! reconstructions.

use mitigation::sliding_windows;
use pauli::{group_by_cover, Hamiltonian, MeasurementGroup, PauliString};
use std::collections::HashMap;

/// One reconstruction window of a measurement-basis circuit, with the
/// reduced subset group that provides its local distribution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowCoverage {
    /// The window subset descriptor (basis restricted to the window); its
    /// support is the qubits the local PMF covers.
    pub subset: PauliString,
    /// Index into [`SpatialPlan::subset_groups`] of the circuit that
    /// measures this subset.
    pub group: usize,
}

/// Aggregate circuit-count statistics — the quantities plotted in Fig.12.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpatialStats {
    /// Pauli terms in the Hamiltonian (excluding identity).
    pub hamiltonian_terms: usize,
    /// Baseline circuits per iteration (post-commutation bases, Eq.2).
    pub baseline_circuits: usize,
    /// Subsets JigSaw executes per iteration (per-circuit windows, no
    /// cross-circuit reduction, Eq.3).
    pub jigsaw_subsets: usize,
    /// Subsets VarSaw executes per iteration after commuting (Eq.4).
    pub varsaw_subsets: usize,
}

impl SpatialStats {
    /// JigSaw subsets relative to baseline circuits (Fig.12 orange bars).
    pub fn jigsaw_ratio(&self) -> f64 {
        self.jigsaw_subsets as f64 / self.baseline_circuits.max(1) as f64
    }

    /// VarSaw subsets relative to baseline circuits (Fig.12 orange bars).
    pub fn varsaw_ratio(&self) -> f64 {
        self.varsaw_subsets as f64 / self.baseline_circuits.max(1) as f64
    }

    /// The VarSaw:JigSaw subset reduction factor (Fig.12 green line).
    pub fn reduction(&self) -> f64 {
        self.jigsaw_subsets as f64 / self.varsaw_subsets.max(1) as f64
    }
}

/// The spatial execution plan for a Hamiltonian: the reduced subset
/// circuits, the basis circuits they serve, and the per-window coverage
/// map.
///
/// # Examples
///
/// The paper's Fig.6 worked example:
///
/// ```
/// use pauli::Hamiltonian;
/// use varsaw::SpatialPlan;
///
/// let h = Hamiltonian::from_pairs(4, &[
///     (1.0, "ZZIZ"), (1.0, "ZIZX"), (1.0, "ZZII"), (1.0, "IIZX"), (1.0, "ZXXZ"),
///     (1.0, "XZIZ"), (1.0, "ZXIZ"), (1.0, "IXZZ"), (1.0, "XIZZ"), (1.0, "XXIX"),
/// ]);
/// let plan = SpatialPlan::new(&h, 2);
/// let stats = plan.stats();
/// assert_eq!(stats.baseline_circuits, 7);  // Eq.2
/// assert_eq!(stats.jigsaw_subsets, 21);    // Eq.3
/// assert_eq!(stats.varsaw_subsets, 9);     // Eq.4
/// ```
#[derive(Clone, Debug)]
pub struct SpatialPlan {
    window: usize,
    bases: Vec<PauliString>,
    subset_groups: Vec<MeasurementGroup>,
    coverage: Vec<Vec<WindowCoverage>>,
    stats: SpatialStats,
}

impl SpatialPlan {
    /// Builds the plan for a Hamiltonian with the given subset window size.
    ///
    /// Pipeline (Fig.10, right): generate window subsets for every
    /// measurable Pauli string → deduplicate → cover-based commuting
    /// reduction → map every basis circuit window onto its covering group.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or the Hamiltonian has no measurable terms.
    pub fn new(hamiltonian: &Hamiltonian, window: usize) -> Self {
        Self::with_coefficient_floor(hamiltonian, window, 0.0)
    }

    /// Like [`SpatialPlan::new`], but generates subsets only for terms with
    /// `|coefficient| >= floor` — the paper's proposed extension of
    /// employing mitigation "only to specific terms in the Hamiltonian —
    /// i.e., only employ mitigation where it matters most" (Section 7.3).
    ///
    /// Basis-circuit windows whose subset never entered the pool simply get
    /// no local PMF: those reconstructions fall back to the (noisy) global
    /// for that window, trading accuracy for fewer subset circuits. A floor
    /// of 0 reproduces full VarSaw; a floor above every coefficient leaves
    /// pure baseline measurement.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`, `floor < 0`, or the Hamiltonian has no
    /// measurable terms.
    pub fn with_coefficient_floor(hamiltonian: &Hamiltonian, window: usize, floor: f64) -> Self {
        assert!(window > 0, "window size must be positive");
        assert!(floor >= 0.0, "coefficient floor must be nonnegative");
        let terms = hamiltonian.measurable_terms();
        let strings: Vec<PauliString> = terms.iter().map(|t| t.string().clone()).collect();
        assert!(
            !strings.is_empty(),
            "Hamiltonian has no measurable terms to plan for"
        );

        // Baseline bases: trivial qubit commutation over the terms (Eq.2).
        let bases: Vec<PauliString> = group_by_cover(&strings)
            .into_iter()
            .map(|g| g.basis)
            .collect();

        // VarSaw subset pool: windows of every *important* Pauli string,
        // deduplicated.
        let mut unique: Vec<PauliString> = Vec::new();
        let mut seen: HashMap<PauliString, ()> = HashMap::new();
        for t in &terms {
            if t.coeff().abs() < floor {
                continue;
            }
            for w in sliding_windows(t.string(), window) {
                if seen.insert(w.clone(), ()).is_none() {
                    unique.push(w);
                }
            }
        }

        // Commuting reduction over the pooled subsets (Eq.3 → Eq.4).
        let subset_groups = group_by_cover(&unique);

        // Index: subset string → covering group.
        let mut group_of: HashMap<&PauliString, usize> = HashMap::new();
        for (gi, g) in subset_groups.iter().enumerate() {
            for &m in &g.members {
                group_of.insert(&unique[m], gi);
            }
        }

        // Coverage of each basis circuit's windows. With a zero floor every
        // basis window is in the pool (bases are seed terms); with a
        // positive floor, uncovered windows are skipped and their
        // reconstruction relies on the global alone.
        let mut jigsaw_subsets = 0usize;
        let coverage: Vec<Vec<WindowCoverage>> = bases
            .iter()
            .map(|b| {
                let windows = sliding_windows(b, window);
                jigsaw_subsets += windows.len();
                windows
                    .into_iter()
                    .filter_map(|s| {
                        group_of
                            .get(&s)
                            .map(|&group| WindowCoverage { subset: s, group })
                    })
                    .collect()
            })
            .collect();

        let stats = SpatialStats {
            hamiltonian_terms: strings.len(),
            baseline_circuits: bases.len(),
            jigsaw_subsets,
            varsaw_subsets: subset_groups.len(),
        };

        SpatialPlan {
            window,
            bases,
            subset_groups,
            coverage,
            stats,
        }
    }

    /// The subset window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The measurement bases of the baseline circuits (Eq.2), in group
    /// order.
    pub fn bases(&self) -> &[PauliString] {
        &self.bases
    }

    /// The reduced subset circuits VarSaw executes each iteration (Eq.4).
    /// Each group's basis has support confined to one window.
    pub fn subset_groups(&self) -> &[MeasurementGroup] {
        &self.subset_groups
    }

    /// The reconstruction windows of basis circuit `b` and the subset
    /// groups covering them.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn coverage(&self, b: usize) -> &[WindowCoverage] {
        &self.coverage[b]
    }

    /// Circuit-count statistics (Fig.12).
    pub fn stats(&self) -> SpatialStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig6_hamiltonian() -> Hamiltonian {
        Hamiltonian::from_pairs(
            4,
            &[
                (1.0, "ZZIZ"),
                (1.0, "ZIZX"),
                (1.0, "ZZII"),
                (1.0, "IIZX"),
                (1.0, "ZXXZ"),
                (1.0, "XZIZ"),
                (1.0, "ZXIZ"),
                (1.0, "IXZZ"),
                (1.0, "XIZZ"),
                (1.0, "XXIX"),
            ],
        )
    }

    #[test]
    fn fig6_counts_are_reproduced_exactly() {
        let plan = SpatialPlan::new(&fig6_hamiltonian(), 2);
        let s = plan.stats();
        assert_eq!(s.hamiltonian_terms, 10);
        assert_eq!(s.baseline_circuits, 7);
        assert_eq!(s.jigsaw_subsets, 21);
        assert_eq!(s.varsaw_subsets, 9);
        assert!((s.reduction() - 21.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn fig6_varsaw_groups_match_eq4() {
        let plan = SpatialPlan::new(&fig6_hamiltonian(), 2);
        let mut bases: Vec<String> = plan
            .subset_groups()
            .iter()
            .map(|g| g.basis.to_string())
            .collect();
        bases.sort();
        let mut expected: Vec<String> = [
            "ZZII", "IIZX", "ZXII", "IXXI", "IIXZ", "XZII", "IXZI", "IIZZ", "XXII",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        expected.sort();
        assert_eq!(bases, expected);
    }

    #[test]
    fn every_window_is_covered_by_its_group() {
        let plan = SpatialPlan::new(&fig6_hamiltonian(), 2);
        for (b, _) in plan.bases().iter().enumerate() {
            for wc in plan.coverage(b) {
                let group = &plan.subset_groups()[wc.group];
                assert!(
                    group.basis.covers(&wc.subset),
                    "group {} does not cover window {}",
                    group.basis,
                    wc.subset
                );
            }
        }
    }

    #[test]
    fn subset_group_supports_fit_the_window() {
        let plan = SpatialPlan::new(&fig6_hamiltonian(), 2);
        for g in plan.subset_groups() {
            let sup = g.basis.support();
            assert!(!sup.is_empty());
            assert!(sup.last().unwrap() - sup.first().unwrap() < plan.window());
        }
    }

    #[test]
    fn varsaw_never_exceeds_jigsaw() {
        for window in [2, 3] {
            let plan = SpatialPlan::new(&fig6_hamiltonian(), window);
            let s = plan.stats();
            assert!(s.varsaw_subsets <= s.jigsaw_subsets);
        }
    }

    #[test]
    fn single_term_hamiltonian_plans_trivially() {
        let h = Hamiltonian::from_pairs(3, &[(1.0, "ZZZ")]);
        let plan = SpatialPlan::new(&h, 2);
        assert_eq!(plan.stats().baseline_circuits, 1);
        assert_eq!(plan.stats().jigsaw_subsets, 2);
        assert_eq!(plan.stats().varsaw_subsets, 2);
    }

    #[test]
    #[should_panic(expected = "no measurable terms")]
    fn identity_only_hamiltonian_rejected() {
        let h = Hamiltonian::from_pairs(2, &[(1.0, "II")]);
        SpatialPlan::new(&h, 2);
    }
}
