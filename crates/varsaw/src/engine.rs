//! The JigSaw-for-VQA and VarSaw objective evaluators.
//!
//! Both implement [`vqe::EnergyEvaluator`], so the same tuning loop
//! ([`vqe::run_vqe`]) drives the paper's four comparison scenarios:
//! Baseline (in the `vqe` crate), JigSaw, VarSaw, and the noise-free Ideal
//! (Baseline on a noiseless device).

use crate::spatial::SpatialPlan;
use crate::temporal::{GlobalScheduler, TemporalPolicy};
use mitigation::{mbm_correct, sliding_windows, Pmf, ReconstructionConfig, Reconstructor};
use pauli::{Hamiltonian, PauliString};
use qsim::{Circuit, Statevector};
use vqe::{BatchJob, EfficientSu2, EnergyEvaluator, GroupedHamiltonian, SimExecutor};

/// The execute-and-mitigate plumbing shared by [`JigsawEvaluator`] and
/// [`VarSawEvaluator`]: runs subset/Global circuits (optionally
/// MBM-corrected) and reconstructs through a persistent [`Reconstructor`]
/// whose projection-key tables and scratch survive across VQE iterations
/// — the measurement geometry of a Hamiltonian never changes between
/// tuner steps, so every reconstruction after the first runs key-cached
/// and allocation-free.
#[derive(Clone, Debug)]
struct MitigationPipeline {
    executor: SimExecutor,
    recon: ReconstructionConfig,
    reconstructor: Reconstructor,
    mbm: bool,
}

impl MitigationPipeline {
    /// Wraps an executor; the reconstruction engine inherits the
    /// executor's [`qsim::Parallelism`] choice so one knob pins the whole
    /// evaluation stack (e.g. `Serial` under an outer `parallel_map`).
    fn new(executor: SimExecutor) -> Self {
        let reconstructor = Reconstructor::new().with_parallelism(executor.parallelism());
        MitigationPipeline {
            executor,
            recon: ReconstructionConfig::default(),
            reconstructor,
            mbm: false,
        }
    }

    /// Applies matrix-based mitigation when enabled.
    fn correct(&mut self, pmf: Pmf) -> Pmf {
        if self.mbm {
            let cal = self.executor.calibration(pmf.num_qubits());
            mbm_correct(&pmf, &cal)
        } else {
            pmf
        }
    }

    /// Runs a whole measurement family (subset and Global circuits) as
    /// one batched executor dispatch — exactly equivalent to running the
    /// jobs one by one (see [`SimExecutor::run_batch`]), with MBM applied
    /// to each result in order.
    fn run_measurements(&mut self, jobs: &[BatchJob<'_>]) -> Vec<Pmf> {
        let pmfs = self.executor.run_batch(jobs);
        pmfs.into_iter().map(|pmf| self.correct(pmf)).collect()
    }

    /// Bayesian reconstruction through the persistent engine.
    fn reconstruct(&mut self, global: &Pmf, locals: &[Pmf]) -> Pmf {
        self.reconstructor.reconstruct(global, locals, self.recon)
    }
}

/// JigSaw applied to VQA, application-agnostically (the paper's "JigSaw"
/// comparison): every iteration, every basis circuit runs its Global *and*
/// all of its sliding-window subset circuits, with no cross-circuit subset
/// reduction and no Global reuse.
#[derive(Clone, Debug)]
pub struct JigsawEvaluator {
    ansatz: EfficientSu2,
    grouped: GroupedHamiltonian,
    window: usize,
    pipeline: MitigationPipeline,
}

impl JigsawEvaluator {
    /// Creates a JigSaw evaluator with the given subset window size.
    ///
    /// # Panics
    ///
    /// Panics if the ansatz and Hamiltonian qubit counts differ or
    /// `window == 0`.
    pub fn new(
        hamiltonian: &Hamiltonian,
        ansatz: EfficientSu2,
        window: usize,
        executor: SimExecutor,
    ) -> Self {
        assert_eq!(
            ansatz.num_qubits(),
            hamiltonian.num_qubits(),
            "ansatz/Hamiltonian qubit mismatch"
        );
        assert!(window > 0, "window size must be positive");
        JigsawEvaluator {
            ansatz,
            grouped: GroupedHamiltonian::new(hamiltonian),
            window,
            pipeline: MitigationPipeline::new(executor),
        }
    }

    /// Enables matrix-based mitigation on every measured PMF.
    pub fn with_mbm(mut self, enabled: bool) -> Self {
        self.pipeline.mbm = enabled;
        self
    }

    /// Overrides the reconstruction configuration.
    pub fn with_reconstruction(mut self, recon: ReconstructionConfig) -> Self {
        self.pipeline.recon = recon;
        self
    }

    /// Circuits executed per objective evaluation: one Global plus all
    /// subsets for every basis group.
    pub fn circuits_per_evaluation(&self) -> usize {
        self.grouped
            .groups()
            .iter()
            .map(|g| 1 + sliding_windows(&g.basis, self.window).len())
            .sum()
    }

    /// The grouped Hamiltonian.
    pub fn grouped(&self) -> &GroupedHamiltonian {
        &self.grouped
    }
}

impl JigsawEvaluator {
    /// One objective evaluation against an already-prepared ansatz
    /// state: every group's Global and subset circuits dispatched as
    /// **one** executor batch (in the same order sequential execution
    /// would submit them, so sampling streams match run for run), then
    /// per-group Bayesian reconstruction.
    fn evaluate_prepared(&mut self, state: &Statevector) -> f64 {
        let windows: Vec<Vec<PauliString>> = self
            .grouped
            .groups()
            .iter()
            .map(|g| sliding_windows(&g.basis, self.window))
            .collect();
        let mut jobs: Vec<BatchJob<'_>> = Vec::new();
        for (g, wins) in self.grouped.groups().iter().zip(&windows) {
            jobs.push(BatchJob::global(state, &g.basis));
            for w in wins {
                jobs.push(BatchJob::subset(state, w));
            }
        }
        let pipeline = &mut self.pipeline;
        let mut results = pipeline.run_measurements(&jobs).into_iter();
        let pmfs: Vec<Pmf> = windows
            .iter()
            .map(|wins| {
                let global = results.next().expect("one Global per group");
                let locals: Vec<Pmf> = wins
                    .iter()
                    .map(|_| results.next().expect("one PMF per subset"))
                    .collect();
                pipeline.reconstruct(&global, &locals)
            })
            .collect();
        self.grouped.energy_from_pmfs(&pmfs)
    }
}

impl EnergyEvaluator for JigsawEvaluator {
    fn evaluate(&mut self, params: &[f64]) -> f64 {
        let state = self.pipeline.executor.prepare(&self.ansatz.circuit(params));
        self.evaluate_prepared(&state)
    }

    /// A probe family as one batch: ansatz states prepared together
    /// against one cached plan ([`SimExecutor::prepare_batch`]), then
    /// each probe's measurement family dispatched batched, in probe
    /// order — exactly the sequential results, seed for seed.
    fn evaluate_batch(&mut self, param_sets: &[&[f64]]) -> Vec<f64> {
        let circuits: Vec<Circuit> = param_sets.iter().map(|p| self.ansatz.circuit(p)).collect();
        let states = self.pipeline.executor.prepare_batch(&circuits);
        states
            .iter()
            .map(|state| self.evaluate_prepared(state))
            .collect()
    }

    fn circuits_executed(&self) -> u64 {
        self.pipeline.executor.circuits_executed()
    }
}

/// VarSaw: JigSaw's measurement error mitigation with the spatial subset
/// reduction ([`SpatialPlan`]) and selective Global execution
/// ([`GlobalScheduler`]) — the paper's contribution.
///
/// Per objective evaluation:
///
/// 1. the reduced subset circuits execute (always);
/// 2. if the scheduler calls for it, the Globals execute too, the
///    mitigated result is computed both from the fresh Globals and from
///    the chained priors, and the comparison feeds the sparsity hill
///    climb (Fig.11);
/// 3. otherwise the previous evaluation's Output-PMFs serve as the
///    reconstruction priors (`MRᵢ` from `MRᵢ₋₁` and `MSᵢ`).
#[derive(Clone, Debug)]
pub struct VarSawEvaluator {
    ansatz: EfficientSu2,
    grouped: GroupedHamiltonian,
    plan: SpatialPlan,
    scheduler: GlobalScheduler,
    priors: Vec<Option<Pmf>>,
    pipeline: MitigationPipeline,
}

impl VarSawEvaluator {
    /// Creates a VarSaw evaluator.
    ///
    /// # Panics
    ///
    /// Panics if the ansatz and Hamiltonian qubit counts differ, or
    /// `window == 0`, or the Hamiltonian has no measurable terms.
    pub fn new(
        hamiltonian: &Hamiltonian,
        ansatz: EfficientSu2,
        window: usize,
        temporal: TemporalPolicy,
        executor: SimExecutor,
    ) -> Self {
        Self::with_coefficient_floor(hamiltonian, ansatz, window, 0.0, temporal, executor)
    }

    /// [`VarSawEvaluator::new`] with selective mitigation: subsets are
    /// planned only for terms with `|coefficient| >= floor` (the
    /// Section 7.3 cost/accuracy knob — see
    /// [`SpatialPlan::with_coefficient_floor`]). Basis windows without a
    /// planned subset reconstruct from the Global alone.
    ///
    /// # Panics
    ///
    /// Same conditions as [`VarSawEvaluator::new`], plus `floor < 0`.
    pub fn with_coefficient_floor(
        hamiltonian: &Hamiltonian,
        ansatz: EfficientSu2,
        window: usize,
        floor: f64,
        temporal: TemporalPolicy,
        executor: SimExecutor,
    ) -> Self {
        assert_eq!(
            ansatz.num_qubits(),
            hamiltonian.num_qubits(),
            "ansatz/Hamiltonian qubit mismatch"
        );
        let grouped = GroupedHamiltonian::new(hamiltonian);
        let plan = SpatialPlan::with_coefficient_floor(hamiltonian, window, floor);
        // Both derive their bases from the same cover-grouping; keep the
        // invariant explicit.
        for (g, b) in grouped.groups().iter().zip(plan.bases()) {
            assert_eq!(&g.basis, b, "grouping/bases order drifted");
        }
        let n = grouped.num_groups();
        VarSawEvaluator {
            ansatz,
            grouped,
            plan,
            scheduler: GlobalScheduler::new(temporal),
            priors: vec![None; n],
            pipeline: MitigationPipeline::new(executor),
        }
    }

    /// Enables matrix-based mitigation on every measured PMF.
    pub fn with_mbm(mut self, enabled: bool) -> Self {
        self.pipeline.mbm = enabled;
        self
    }

    /// Overrides the reconstruction configuration.
    pub fn with_reconstruction(mut self, recon: ReconstructionConfig) -> Self {
        self.pipeline.recon = recon;
        self
    }

    /// The spatial plan (for cost statistics).
    pub fn plan(&self) -> &SpatialPlan {
        &self.plan
    }

    /// The Global scheduler (for sparsity statistics).
    pub fn scheduler(&self) -> &GlobalScheduler {
        &self.scheduler
    }

    /// The grouped Hamiltonian.
    pub fn grouped(&self) -> &GroupedHamiltonian {
        &self.grouped
    }
}

impl VarSawEvaluator {
    /// One objective evaluation against an already-prepared ansatz state
    /// (steps 1–3 of the type-level docs). The reduced subset family —
    /// and, on Global iterations, the Global family — each go through
    /// one batched executor dispatch in the order sequential execution
    /// would submit them.
    fn evaluate_prepared(&mut self, state: &Statevector) -> f64 {
        let pipeline = &mut self.pipeline;

        // 1. Measurement Subsets: the reduced groups, one batch.
        let subset_jobs: Vec<BatchJob<'_>> = self
            .plan
            .subset_groups()
            .iter()
            .map(|g| BatchJob::subset(state, &g.basis))
            .collect();
        let subset_pmfs: Vec<Pmf> = pipeline.run_measurements(&subset_jobs);

        // Local PMFs per basis circuit, marginalized out of the groups.
        let n_bases = self.grouped.num_groups();
        let locals: Vec<Vec<Pmf>> = (0..n_bases)
            .map(|b| {
                self.plan
                    .coverage(b)
                    .iter()
                    .map(|wc| subset_pmfs[wc.group].marginal(&wc.subset.support()))
                    .collect()
            })
            .collect();

        // 2./3. Reconstruction with fresh Globals and/or chained priors.
        let have_priors = self.priors.iter().all(Option::is_some);
        let run_global = self.scheduler.should_run_global() || !have_priors;

        let chained: Option<Vec<Pmf>> = have_priors.then(|| {
            self.priors
                .iter()
                .enumerate()
                .map(|(b, prior)| {
                    let prior = prior.as_ref().expect("checked have_priors");
                    pipeline.reconstruct(prior, &locals[b])
                })
                .collect()
        });
        let fresh: Option<Vec<Pmf>> = run_global.then(|| {
            // The fresh Globals as one batch (reconstruction consumes no
            // randomness, so batching them ahead of the per-group
            // reconstructions leaves the sampling streams unchanged).
            let global_jobs: Vec<BatchJob<'_>> = self
                .grouped
                .groups()
                .iter()
                .map(|g| BatchJob::global(state, &g.basis))
                .collect();
            let globals = pipeline.run_measurements(&global_jobs);
            globals
                .iter()
                .enumerate()
                .map(|(b, global)| pipeline.reconstruct(global, &locals[b]))
                .collect()
        });

        let (energy, outputs) = match (fresh, chained) {
            (Some(f), Some(c)) => {
                let ef = self.grouped.energy_from_pmfs(&f);
                let ec = self.grouped.energy_from_pmfs(&c);
                self.scheduler.feedback(ef, ec);
                if ec <= ef {
                    (ec, c)
                } else {
                    (ef, f)
                }
            }
            (Some(f), None) => (self.grouped.energy_from_pmfs(&f), f),
            (None, Some(c)) => (self.grouped.energy_from_pmfs(&c), c),
            (None, None) => unreachable!("first evaluation always runs Globals"),
        };
        self.priors = outputs.into_iter().map(Some).collect();
        self.scheduler.advance(run_global);
        energy
    }
}

impl EnergyEvaluator for VarSawEvaluator {
    fn evaluate(&mut self, params: &[f64]) -> f64 {
        let state = self.pipeline.executor.prepare(&self.ansatz.circuit(params));
        self.evaluate_prepared(&state)
    }

    /// A probe family with batched state preparation. The prior-chaining
    /// and Global-scheduling state advance per probe, in order — exactly
    /// as sequential evaluation would (preparation consumes no
    /// randomness), so traces and scheduler decisions are unchanged.
    fn evaluate_batch(&mut self, param_sets: &[&[f64]]) -> Vec<f64> {
        let circuits: Vec<Circuit> = param_sets.iter().map(|p| self.ansatz.circuit(p)).collect();
        let states = self.pipeline.executor.prepare_batch(&circuits);
        states
            .iter()
            .map(|state| self.evaluate_prepared(state))
            .collect()
    }

    fn circuits_executed(&self) -> u64 {
        self.pipeline.executor.circuits_executed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnoise::DeviceModel;
    use vqe::{BaselineEvaluator, Entanglement};

    /// Includes a weight-3 term so the Global circuits measure more qubits
    /// than the window-2 subsets — the regime where mitigation has
    /// something to recover.
    fn toy_hamiltonian() -> Hamiltonian {
        Hamiltonian::from_pairs(
            3,
            &[
                (-0.8, "ZZZ"),
                (-1.0, "ZZI"),
                (-1.0, "IZZ"),
                (-0.6, "XXI"),
                (-0.6, "IXX"),
                (0.4, "ZIZ"),
            ],
        )
    }

    fn ansatz() -> EfficientSu2 {
        EfficientSu2::new(3, 1, Entanglement::Full)
    }

    /// A device where subsetting matters: strong measurement crosstalk
    /// makes a 3-qubit simultaneous readout much noisier per qubit than a
    /// 2-qubit subset readout. (With no crosstalk and identical qubits the
    /// locals equal the global's own marginals and reconstruction is a
    /// fixpoint — correctly, there is nothing to mitigate.)
    fn crosstalky_device() -> DeviceModel {
        DeviceModel::new(
            "crosstalky",
            vec![qnoise::ReadoutError::symmetric(0.04); 3],
            qnoise::CrosstalkModel::new(0.6),
            0.0,
        )
    }

    #[test]
    fn noiseless_varsaw_matches_baseline_energy() {
        let h = toy_hamiltonian();
        let params = ansatz().initial_parameters(3);
        let mut base = BaselineEvaluator::new(
            &h,
            ansatz(),
            SimExecutor::exact(DeviceModel::noiseless(3), 1),
        );
        let mut vs = VarSawEvaluator::new(
            &h,
            ansatz(),
            2,
            TemporalPolicy::EveryIteration,
            SimExecutor::exact(DeviceModel::noiseless(3), 1),
        );
        let eb = base.evaluate(&params);
        let ev = vs.evaluate(&params);
        assert!(
            (eb - ev).abs() < 1e-6,
            "baseline {eb} vs varsaw {ev} (noiseless should agree)"
        );
    }

    #[test]
    fn varsaw_reduces_measurement_bias_under_noise() {
        // At fixed parameters, the mitigated estimate should sit closer to
        // the ideal value than the unmitigated baseline estimate.
        let h = toy_hamiltonian();
        let params = ansatz().initial_parameters(7);
        let dev = crosstalky_device();
        let mut ideal = BaselineEvaluator::new(
            &h,
            ansatz(),
            SimExecutor::exact(DeviceModel::noiseless(3), 1),
        );
        let mut noisy = BaselineEvaluator::new(&h, ansatz(), SimExecutor::exact(dev.clone(), 1));
        let mut vs = VarSawEvaluator::new(
            &h,
            ansatz(),
            2,
            TemporalPolicy::EveryIteration,
            SimExecutor::exact(dev, 1),
        );
        let e_ideal = ideal.evaluate(&params);
        let e_noisy = noisy.evaluate(&params);
        let e_vs = vs.evaluate(&params);
        assert!(
            (e_vs - e_ideal).abs() < (e_noisy - e_ideal).abs(),
            "varsaw {e_vs}, noisy {e_noisy}, ideal {e_ideal}"
        );
    }

    #[test]
    fn jigsaw_reduces_measurement_bias_under_noise() {
        let h = toy_hamiltonian();
        let params = ansatz().initial_parameters(7);
        let dev = crosstalky_device();
        let mut ideal = BaselineEvaluator::new(
            &h,
            ansatz(),
            SimExecutor::exact(DeviceModel::noiseless(3), 1),
        );
        let mut noisy = BaselineEvaluator::new(&h, ansatz(), SimExecutor::exact(dev.clone(), 1));
        let mut js = JigsawEvaluator::new(&h, ansatz(), 2, SimExecutor::exact(dev, 1));
        let e_ideal = ideal.evaluate(&params);
        let e_noisy = noisy.evaluate(&params);
        let e_js = js.evaluate(&params);
        assert!(
            (e_js - e_ideal).abs() < (e_noisy - e_ideal).abs(),
            "jigsaw {e_js}, noisy {e_noisy}, ideal {e_ideal}"
        );
    }

    #[test]
    fn varsaw_costs_fewer_circuits_than_jigsaw() {
        let h = toy_hamiltonian();
        let params = ansatz().initial_parameters(1);
        let dev = DeviceModel::mumbai_like();
        let mut js = JigsawEvaluator::new(&h, ansatz(), 2, SimExecutor::new(dev.clone(), 64, 1));
        let mut vs = VarSawEvaluator::new(
            &h,
            ansatz(),
            2,
            TemporalPolicy::OneShot,
            SimExecutor::new(dev, 64, 1),
        );
        for _ in 0..5 {
            js.evaluate(&params);
            vs.evaluate(&params);
        }
        assert!(
            vs.circuits_executed() < js.circuits_executed(),
            "varsaw {} vs jigsaw {}",
            vs.circuits_executed(),
            js.circuits_executed()
        );
    }

    #[test]
    fn one_shot_policy_runs_globals_once() {
        let h = toy_hamiltonian();
        let params = ansatz().initial_parameters(2);
        let n_bases = GroupedHamiltonian::new(&h).num_groups() as u64;
        let mut vs = VarSawEvaluator::new(
            &h,
            ansatz(),
            2,
            TemporalPolicy::OneShot,
            SimExecutor::new(DeviceModel::mumbai_like(), 64, 2),
        );
        let subsets = vs.plan().stats().varsaw_subsets as u64;
        vs.evaluate(&params);
        let first = vs.circuits_executed();
        assert_eq!(
            first,
            subsets + n_bases,
            "first eval runs subsets + globals"
        );
        vs.evaluate(&params);
        assert_eq!(
            vs.circuits_executed(),
            first + subsets,
            "later evals run subsets only"
        );
        assert_eq!(vs.scheduler().globals_run(), 1);
    }

    #[test]
    fn adaptive_scheduler_state_progresses() {
        let h = toy_hamiltonian();
        let params = ansatz().initial_parameters(4);
        let mut vs = VarSawEvaluator::new(
            &h,
            ansatz(),
            2,
            TemporalPolicy::Adaptive {
                initial_interval: 2,
            },
            SimExecutor::new(DeviceModel::mumbai_like(), 128, 4),
        );
        for _ in 0..12 {
            vs.evaluate(&params);
        }
        assert_eq!(vs.scheduler().evaluations(), 12);
        let frac = vs.scheduler().global_fraction();
        assert!(frac < 1.0 && frac > 0.0, "fraction {frac}");
    }

    #[test]
    fn jigsaw_circuit_count_formula_matches_execution() {
        let h = toy_hamiltonian();
        let params = ansatz().initial_parameters(5);
        let mut js = JigsawEvaluator::new(
            &h,
            ansatz(),
            2,
            SimExecutor::new(DeviceModel::mumbai_like(), 32, 5),
        );
        let per_eval = js.circuits_per_evaluation() as u64;
        js.evaluate(&params);
        assert_eq!(js.circuits_executed(), per_eval);
    }
}
