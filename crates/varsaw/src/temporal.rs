//! VarSaw's temporal optimization: Selective Execution of Globals.
//!
//! JigSaw re-executes the Global circuits every iteration; VarSaw observes
//! that proximate VQA iterations produce nearly the same global
//! distributions, while each fresh Global injects fresh measurement error
//! (Section 3.3). The [`GlobalScheduler`] implements Fig.11's feedback
//! design: Globals run every `k`-th objective evaluation; on those
//! evaluations the mitigated result is computed both with the fresh Global
//! and with the chained prior, and the comparison drives a hill climb on
//! `k` — doubling the sparsity interval when the chained result is at
//! least as good, halving it otherwise.

use std::fmt;

/// How often Global circuits are executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TemporalPolicy {
    /// A Global with every evaluation — "No-Sparsity", which is JigSaw's
    /// behaviour (plus VarSaw's spatial optimization).
    EveryIteration,
    /// A single Global at the very first evaluation — "Max-Sparsity"
    /// (Fig.9's extreme).
    OneShot,
    /// Hill-climbing sparsity starting from the given interval (Fig.11).
    Adaptive {
        /// The initial Global interval `k` (evaluations between Globals).
        initial_interval: usize,
    },
}

impl Default for TemporalPolicy {
    fn default() -> Self {
        TemporalPolicy::Adaptive {
            initial_interval: 2,
        }
    }
}

impl fmt::Display for TemporalPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemporalPolicy::EveryIteration => write!(f, "no-sparsity"),
            TemporalPolicy::OneShot => write!(f, "max-sparsity"),
            TemporalPolicy::Adaptive { initial_interval } => {
                write!(f, "adaptive(k0={initial_interval})")
            }
        }
    }
}

/// The runtime scheduler deciding, per objective evaluation, whether the
/// Global circuits execute, and adapting the sparsity interval from result
/// feedback.
///
/// # Examples
///
/// ```
/// use varsaw::{GlobalScheduler, TemporalPolicy};
///
/// let mut sched = GlobalScheduler::new(TemporalPolicy::Adaptive { initial_interval: 2 });
/// assert!(sched.should_run_global()); // evaluation 0 always runs one
/// sched.advance(true);
/// assert!(!sched.should_run_global());
/// sched.advance(false);
/// assert!(sched.should_run_global()); // interval 2 → evaluation 2
/// ```
#[derive(Clone, Debug)]
pub struct GlobalScheduler {
    policy: TemporalPolicy,
    interval: usize,
    max_interval: usize,
    eval_index: usize,
    next_global: usize,
    globals_run: usize,
}

impl GlobalScheduler {
    /// Creates a scheduler for a policy.
    ///
    /// # Panics
    ///
    /// Panics if an adaptive policy has `initial_interval == 0`.
    pub fn new(policy: TemporalPolicy) -> Self {
        let interval = match policy {
            TemporalPolicy::EveryIteration => 1,
            TemporalPolicy::OneShot => usize::MAX,
            TemporalPolicy::Adaptive { initial_interval } => {
                assert!(initial_interval > 0, "adaptive interval must be positive");
                initial_interval
            }
        };
        GlobalScheduler {
            policy,
            interval,
            max_interval: 1 << 20,
            eval_index: 0,
            next_global: 0,
            globals_run: 0,
        }
    }

    /// The policy this scheduler runs.
    pub fn policy(&self) -> TemporalPolicy {
        self.policy
    }

    /// The current Global interval `k`.
    pub fn interval(&self) -> usize {
        self.interval
    }

    /// Whether the Globals should execute on the *current* evaluation.
    pub fn should_run_global(&self) -> bool {
        self.eval_index >= self.next_global
    }

    /// Advances to the next evaluation, recording whether Globals ran.
    pub fn advance(&mut self, ran_global: bool) {
        if ran_global {
            self.globals_run += 1;
            if self.next_global != usize::MAX {
                self.next_global = self.eval_index.saturating_add(self.interval.max(1));
            }
        }
        if matches!(self.policy, TemporalPolicy::OneShot) {
            self.next_global = usize::MAX;
        }
        self.eval_index += 1;
    }

    /// Feedback from a Global evaluation (Fig.11): `chained` is the energy
    /// of the result built from the previous Mitigated Result and the fresh
    /// Subsets; `fresh` is the energy using the fresh Global. Lower energy
    /// is better. Only adapts under [`TemporalPolicy::Adaptive`].
    pub fn feedback(&mut self, fresh: f64, chained: f64) {
        if !matches!(self.policy, TemporalPolicy::Adaptive { .. }) {
            return;
        }
        if chained <= fresh {
            // Staleness is no worse than fresh measurement error: sparser.
            self.interval = (self.interval.saturating_mul(2)).min(self.max_interval);
        } else {
            self.interval = (self.interval / 2).max(1);
        }
    }

    /// Evaluations seen so far.
    pub fn evaluations(&self) -> usize {
        self.eval_index
    }

    /// Globals executed so far.
    pub fn globals_run(&self) -> usize {
        self.globals_run
    }

    /// The fraction of evaluations on which Globals executed (Fig.14's
    /// secondary axis).
    pub fn global_fraction(&self) -> f64 {
        if self.eval_index == 0 {
            0.0
        } else {
            self.globals_run as f64 / self.eval_index as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(sched: &mut GlobalScheduler, evals: usize) -> Vec<bool> {
        (0..evals)
            .map(|_| {
                let run = sched.should_run_global();
                sched.advance(run);
                run
            })
            .collect()
    }

    #[test]
    fn every_iteration_runs_all_globals() {
        let mut s = GlobalScheduler::new(TemporalPolicy::EveryIteration);
        let runs = drive(&mut s, 10);
        assert!(runs.iter().all(|&r| r));
        assert_eq!(s.global_fraction(), 1.0);
    }

    #[test]
    fn one_shot_runs_exactly_one_global() {
        let mut s = GlobalScheduler::new(TemporalPolicy::OneShot);
        let runs = drive(&mut s, 50);
        assert_eq!(runs.iter().filter(|&&r| r).count(), 1);
        assert!(runs[0]);
        assert!((s.global_fraction() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn adaptive_interval_doubles_on_good_chained_results() {
        let mut s = GlobalScheduler::new(TemporalPolicy::Adaptive {
            initial_interval: 2,
        });
        assert!(s.should_run_global());
        s.feedback(1.0, 0.9); // chained better → interval 4
        s.advance(true);
        assert_eq!(s.interval(), 4);
        let runs = drive(&mut s, 4);
        assert_eq!(runs, vec![false, false, false, true]);
    }

    #[test]
    fn adaptive_interval_halves_on_bad_chained_results() {
        let mut s = GlobalScheduler::new(TemporalPolicy::Adaptive {
            initial_interval: 8,
        });
        s.feedback(1.0, 2.0);
        assert_eq!(s.interval(), 4);
        s.feedback(1.0, 2.0);
        s.feedback(1.0, 2.0);
        s.feedback(1.0, 2.0);
        assert_eq!(s.interval(), 1, "interval floors at 1");
    }

    #[test]
    fn adaptive_schedule_follows_interval() {
        let mut s = GlobalScheduler::new(TemporalPolicy::Adaptive {
            initial_interval: 3,
        });
        let runs = drive(&mut s, 7);
        assert_eq!(runs, vec![true, false, false, true, false, false, true]);
        assert_eq!(s.globals_run(), 3);
    }

    #[test]
    fn non_adaptive_policies_ignore_feedback() {
        let mut s = GlobalScheduler::new(TemporalPolicy::EveryIteration);
        s.feedback(1.0, 0.0);
        assert_eq!(s.interval(), 1);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_adaptive_interval_rejected() {
        GlobalScheduler::new(TemporalPolicy::Adaptive {
            initial_interval: 0,
        });
    }
}
