//! One-call experiment runner covering the paper's comparison methods.

use crate::engine::{JigsawEvaluator, VarSawEvaluator};
use crate::spatial::SpatialStats;
use crate::temporal::TemporalPolicy;
use pauli::Hamiltonian;
use qnoise::DeviceModel;
use std::fmt;
use vqe::{
    run_vqe, BaselineEvaluator, EfficientSu2, Optimizer, SimExecutor, Spsa, VqeConfig, VqeTrace,
};

/// The execution method of a VQE run — the paper's comparison axis
/// (Section 5.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Traditional VQA with Pauli commutation, no mitigation.
    Baseline,
    /// JigSaw applied per-circuit every iteration.
    Jigsaw,
    /// VarSaw with the given temporal policy.
    VarSaw(TemporalPolicy),
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Method::Baseline => write!(f, "baseline"),
            Method::Jigsaw => write!(f, "jigsaw"),
            Method::VarSaw(p) => write!(f, "varsaw[{p}]"),
        }
    }
}

/// Everything a run needs besides the method: problem, ansatz, device and
/// execution knobs.
#[derive(Clone, Debug)]
pub struct RunSetup {
    /// The problem Hamiltonian.
    pub hamiltonian: Hamiltonian,
    /// The parameterized ansatz.
    pub ansatz: EfficientSu2,
    /// The (noisy) device model.
    pub device: DeviceModel,
    /// Shots per circuit.
    pub shots: u64,
    /// JigSaw/VarSaw subset window size (2 in the paper's evaluation).
    pub window: usize,
    /// Master seed: initial parameters, tuner and sampling derive from it.
    pub seed: u64,
    /// Whether matrix-based mitigation is applied on top (Section 6.8).
    pub mbm: bool,
    /// Independent SPSA restarts per run (multi-start). Each restart
    /// draws fresh initial parameters, tuner perturbations and sampling
    /// streams from a salted seed; the restart with the lowest
    /// tail-averaged energy wins. `1` (the default) reproduces a single
    /// legacy run exactly. SPSA on a non-convex VQA landscape can land in
    /// a local minimum for an unlucky (init, perturbation) seed pair, so
    /// practitioners hedge with a small multi-start.
    pub restarts: usize,
}

impl RunSetup {
    /// A setup with the paper's defaults: window 2, 1024 shots, no MBM.
    pub fn new(
        hamiltonian: Hamiltonian,
        ansatz: EfficientSu2,
        device: DeviceModel,
        seed: u64,
    ) -> Self {
        RunSetup {
            hamiltonian,
            ansatz,
            device,
            shots: 1024,
            window: 2,
            seed,
            mbm: false,
            restarts: 1,
        }
    }

    /// Sets the number of SPSA multi-start restarts (see
    /// [`RunSetup::restarts`]).
    ///
    /// # Panics
    ///
    /// Panics if `restarts == 0`.
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        assert!(restarts > 0, "need at least one restart");
        self.restarts = restarts;
        self
    }
}

/// The result of one method run.
#[derive(Clone, Debug)]
pub struct MethodOutcome {
    /// The method that ran.
    pub method: Method,
    /// The VQE trace (energies and cumulative circuit cost per iteration).
    pub trace: VqeTrace,
    /// Spatial circuit statistics, for VarSaw runs.
    pub spatial: Option<SpatialStats>,
    /// Fraction of evaluations that executed Globals, for VarSaw runs
    /// (Fig.14's secondary axis).
    pub global_fraction: Option<f64>,
}

/// Runs one VQE experiment with the chosen method and a fresh SPSA tuner,
/// with [`RunSetup::restarts`]-way multi-start: each restart salts the
/// seeds of its initial parameters, tuner and sampling, and the restart
/// with the lowest tail-averaged energy is returned. With the default
/// `restarts = 1` this is exactly one legacy run.
///
/// All randomness (initial parameters, tuner perturbations, shot sampling)
/// derives from `setup.seed`, so runs are reproducible; vary the seed for
/// independent trials.
///
/// # Examples
///
/// ```
/// use pauli::Hamiltonian;
/// use qnoise::DeviceModel;
/// use varsaw::{run_method, Method, RunSetup, TemporalPolicy};
/// use vqe::{EfficientSu2, Entanglement, VqeConfig};
///
/// let h = Hamiltonian::from_pairs(2, &[(-1.0, "ZZ"), (-0.5, "XI"), (-0.5, "IX")]);
/// let setup = RunSetup::new(h, EfficientSu2::new(2, 1, Entanglement::Full),
///                           DeviceModel::mumbai_like(), 7);
/// let config = VqeConfig { max_iterations: 20, max_circuits: None };
/// let outcome = run_method(&setup, Method::VarSaw(TemporalPolicy::default()), &config);
/// assert_eq!(outcome.trace.iterations(), 20);
/// assert!(outcome.global_fraction.unwrap() <= 1.0);
/// ```
pub fn run_method(setup: &RunSetup, method: Method, config: &VqeConfig) -> MethodOutcome {
    // Fraction of the trace averaged when ranking restarts — the same
    // noise-robust tail estimate the experiments report.
    const RESTART_TAIL: f64 = 0.1;

    assert!(setup.restarts > 0, "need at least one restart");
    let mut best: Option<(f64, MethodOutcome)> = None;
    for restart in 0..setup.restarts as u64 {
        // Golden-ratio salt: restart 0 reproduces the legacy seed
        // derivation exactly, later restarts decorrelate all three
        // streams at once.
        let salt = restart.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let executor = SimExecutor::new(
            setup.device.clone(),
            setup.shots,
            setup.seed ^ 0x5A5A ^ salt,
        );
        let init = setup.ansatz.initial_parameters(setup.seed ^ 0x1234 ^ salt);
        let mut tuner = Spsa::new(setup.seed ^ 0x0B57 ^ salt);
        let outcome = run_method_with(setup, method, config, executor, init, &mut tuner);
        let score = if outcome.trace.iterations() == 0 {
            f64::INFINITY
        } else {
            outcome.trace.converged_energy(RESTART_TAIL)
        };
        if best.as_ref().is_none_or(|(s, _)| score < *s) {
            best = Some((score, outcome));
        }
    }
    best.expect("at least one restart ran").1
}

/// [`run_method`] with caller-provided executor, initial parameters and
/// tuner — the hook the ansatz/depth/optimizer sweeps use.
pub fn run_method_with(
    setup: &RunSetup,
    method: Method,
    config: &VqeConfig,
    executor: SimExecutor,
    initial_params: Vec<f64>,
    tuner: &mut dyn Optimizer,
) -> MethodOutcome {
    match method {
        Method::Baseline => {
            let mut eval =
                BaselineEvaluator::new(&setup.hamiltonian, setup.ansatz.clone(), executor)
                    .with_mbm(setup.mbm);
            let trace = run_vqe(&mut eval, tuner, initial_params, config);
            MethodOutcome {
                method,
                trace,
                spatial: None,
                global_fraction: None,
            }
        }
        Method::Jigsaw => {
            let mut eval = JigsawEvaluator::new(
                &setup.hamiltonian,
                setup.ansatz.clone(),
                setup.window,
                executor,
            )
            .with_mbm(setup.mbm);
            let trace = run_vqe(&mut eval, tuner, initial_params, config);
            MethodOutcome {
                method,
                trace,
                spatial: None,
                global_fraction: None,
            }
        }
        Method::VarSaw(policy) => {
            let mut eval = VarSawEvaluator::new(
                &setup.hamiltonian,
                setup.ansatz.clone(),
                setup.window,
                policy,
                executor,
            )
            .with_mbm(setup.mbm);
            let trace = run_vqe(&mut eval, tuner, initial_params, config);
            MethodOutcome {
                method,
                trace,
                spatial: Some(eval.plan().stats()),
                global_fraction: Some(eval.scheduler().global_fraction()),
            }
        }
    }
}

/// The percentage of the `reference → worse` gap recovered by `improved`:
/// `100 · (worse − improved) / (worse − reference)`.
///
/// This is the paper's "% inaccuracy mitigated" metric (Figs. 14, 15;
/// Tables 3, 4). Positive when `improved` sits between `worse` and the
/// reference; can exceed 100 when `improved` beats the reference, or go
/// negative when it is worse than `worse`.
///
/// Returns 0 when the gap is degenerate (`worse <= reference`).
pub fn percent_gap_recovered(reference: f64, worse: f64, improved: f64) -> f64 {
    let gap = worse - reference;
    if gap <= 1e-12 {
        return 0.0;
    }
    100.0 * (worse - improved) / gap
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqe::Entanglement;

    fn setup() -> RunSetup {
        let h = Hamiltonian::from_pairs(
            3,
            &[
                (-1.0, "ZZI"),
                (-1.0, "IZZ"),
                (-0.5, "XII"),
                (-0.5, "IXI"),
                (-0.5, "IIX"),
            ],
        );
        RunSetup::new(
            h,
            EfficientSu2::new(3, 1, Entanglement::Full),
            DeviceModel::mumbai_like(),
            9,
        )
    }

    #[test]
    fn all_methods_run_and_report() {
        let s = setup();
        let config = VqeConfig {
            max_iterations: 8,
            max_circuits: None,
        };
        for method in [
            Method::Baseline,
            Method::Jigsaw,
            Method::VarSaw(TemporalPolicy::OneShot),
        ] {
            let out = run_method(&s, method, &config);
            assert_eq!(out.trace.iterations(), 8, "{method}");
            assert!(out.trace.total_circuits() > 0);
        }
    }

    #[test]
    fn varsaw_reports_spatial_and_temporal_stats() {
        let s = setup();
        let config = VqeConfig {
            max_iterations: 6,
            max_circuits: None,
        };
        let out = run_method(&s, Method::VarSaw(TemporalPolicy::default()), &config);
        let stats = out.spatial.unwrap();
        assert!(stats.varsaw_subsets <= stats.jigsaw_subsets);
        assert!(out.global_fraction.unwrap() > 0.0);
    }

    #[test]
    fn fixed_budget_gives_varsaw_more_iterations_than_jigsaw() {
        let s = setup();
        let config = VqeConfig {
            max_iterations: 10_000,
            max_circuits: Some(600),
        };
        let js = run_method(&s, Method::Jigsaw, &config);
        let vs = run_method(&s, Method::VarSaw(TemporalPolicy::OneShot), &config);
        assert!(
            vs.trace.iterations() > js.trace.iterations(),
            "varsaw {} vs jigsaw {}",
            vs.trace.iterations(),
            js.trace.iterations()
        );
    }

    #[test]
    fn multi_start_is_no_worse_than_a_single_run() {
        let s = setup();
        let config = VqeConfig {
            max_iterations: 12,
            max_circuits: None,
        };
        let single = run_method(&s, Method::Baseline, &config);
        let multi = run_method(&s.clone().with_restarts(3), Method::Baseline, &config);
        // Restart 0 of the multi-start IS the single run, so best-of-3
        // can only match or beat its tail energy.
        assert!(
            multi.trace.converged_energy(0.1) <= single.trace.converged_energy(0.1) + 1e-12,
            "multi {} vs single {}",
            multi.trace.converged_energy(0.1),
            single.trace.converged_energy(0.1)
        );
    }

    #[test]
    fn multi_start_is_reproducible() {
        let s = setup().with_restarts(2);
        let config = VqeConfig {
            max_iterations: 6,
            max_circuits: None,
        };
        let a = run_method(&s, Method::VarSaw(TemporalPolicy::default()), &config);
        let b = run_method(&s, Method::VarSaw(TemporalPolicy::default()), &config);
        assert_eq!(a.trace.energies, b.trace.energies);
    }

    #[test]
    #[should_panic(expected = "at least one restart")]
    fn zero_restarts_rejected() {
        setup().with_restarts(0);
    }

    #[test]
    fn runs_are_reproducible() {
        let s = setup();
        let config = VqeConfig {
            max_iterations: 5,
            max_circuits: None,
        };
        let a = run_method(&s, Method::Baseline, &config);
        let b = run_method(&s, Method::Baseline, &config);
        assert_eq!(a.trace.energies, b.trace.energies);
    }

    #[test]
    fn percent_gap_recovered_metric() {
        assert_eq!(percent_gap_recovered(0.0, 10.0, 5.0), 50.0);
        assert_eq!(percent_gap_recovered(0.0, 10.0, 0.0), 100.0);
        assert_eq!(percent_gap_recovered(0.0, 10.0, 10.0), 0.0);
        assert_eq!(percent_gap_recovered(0.0, 10.0, -2.0), 120.0);
        assert_eq!(percent_gap_recovered(5.0, 5.0, 4.0), 0.0, "degenerate gap");
    }
}
