//! Property-based tests for the VarSaw core: spatial-plan invariants over
//! random Hamiltonians and scheduler invariants over random feedback.

use pauli::{Hamiltonian, Pauli, PauliString, PauliTerm};
use proptest::prelude::*;
use varsaw::{GlobalScheduler, SpatialPlan, TemporalPolicy};

fn arb_string(n: usize) -> impl Strategy<Value = PauliString> {
    prop::collection::vec(
        prop::sample::select(vec![Pauli::I, Pauli::X, Pauli::Y, Pauli::Z]),
        n,
    )
    .prop_map(PauliString::new)
}

fn arb_hamiltonian(n: usize) -> impl Strategy<Value = Hamiltonian> {
    prop::collection::vec((arb_string(n), -2.0..2.0f64), 1..30).prop_map(move |terms| {
        let mut h = Hamiltonian::new(n);
        for (s, c) in terms {
            if !s.is_identity() && c != 0.0 {
                h.push(PauliTerm::new(c, s));
            }
        }
        // Guarantee at least one measurable term.
        if h.measurable_terms().is_empty() {
            h.push(PauliTerm::new(1.0, PauliString::single(n, 0, Pauli::Z)));
        }
        h
    })
}

proptest! {
    /// Spatial plan invariants: every covered window is covered by its
    /// group's basis, group supports fit the window, VarSaw never runs
    /// more subsets than JigSaw, and at floor 0 every basis window has
    /// coverage.
    #[test]
    fn spatial_plan_invariants(h in arb_hamiltonian(5), window in 1usize..4) {
        let plan = SpatialPlan::new(&h, window);
        let stats = plan.stats();
        prop_assert!(stats.varsaw_subsets <= stats.jigsaw_subsets);
        prop_assert!(stats.baseline_circuits <= stats.hamiltonian_terms);
        let mut covered_windows = 0;
        for (b, _) in plan.bases().iter().enumerate() {
            for wc in plan.coverage(b) {
                covered_windows += 1;
                let group = &plan.subset_groups()[wc.group];
                prop_assert!(group.basis.covers(&wc.subset));
                let sup = group.basis.support();
                prop_assert!(!sup.is_empty());
                prop_assert!(sup.last().unwrap() - sup.first().unwrap() < window.max(1));
            }
        }
        prop_assert_eq!(covered_windows, stats.jigsaw_subsets,
            "floor 0 covers every basis window");
    }

    /// A coefficient floor only removes subsets, never adds them, and an
    /// infinite floor removes them all.
    #[test]
    fn coefficient_floor_is_monotone(h in arb_hamiltonian(5), floor in 0.0..2.5f64) {
        let full = SpatialPlan::new(&h, 2).stats();
        let filtered = SpatialPlan::with_coefficient_floor(&h, 2, floor).stats();
        prop_assert!(filtered.varsaw_subsets <= full.varsaw_subsets);
        let none = SpatialPlan::with_coefficient_floor(&h, 2, f64::INFINITY).stats();
        prop_assert_eq!(none.varsaw_subsets, 0);
    }

    /// Scheduler invariants: the global fraction stays within (0, 1], the
    /// first evaluation always runs a Global, and OneShot runs exactly one.
    #[test]
    fn scheduler_invariants(
        feedback in prop::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 1..60),
        k0 in 1usize..16,
    ) {
        let mut adaptive = GlobalScheduler::new(TemporalPolicy::Adaptive { initial_interval: k0 });
        let mut oneshot = GlobalScheduler::new(TemporalPolicy::OneShot);
        prop_assert!(adaptive.should_run_global());
        prop_assert!(oneshot.should_run_global());
        for &(fresh, chained) in &feedback {
            for sched in [&mut adaptive, &mut oneshot] {
                let run = sched.should_run_global();
                if run {
                    sched.feedback(fresh, chained);
                }
                sched.advance(run);
                prop_assert!(sched.interval() >= 1);
            }
        }
        prop_assert!(adaptive.global_fraction() > 0.0);
        prop_assert!(adaptive.global_fraction() <= 1.0);
        prop_assert_eq!(oneshot.globals_run(), 1);
    }

    /// Cost-model sanity over the whole qubit range: JigSaw dominates
    /// traditional dominates VarSaw-with-small-k.
    #[test]
    fn cost_model_ordering(q in 8usize..1000, k in 0.0..0.05f64) {
        use varsaw::cost;
        let trad = cost::traditional_cost(q);
        let jig = cost::jigsaw_cost(q, 2);
        let vs = cost::varsaw_cost(q, k, 2);
        prop_assert!(jig > trad);
        prop_assert!(vs <= cost::varsaw_cost(q, 1.0, 2));
        prop_assert!(vs >= 0.0);
    }
}
