//! Hamiltonian energy estimation from grouped measurements.

use crate::executor::SimExecutor;
use mitigation::Pmf;
use pauli::{expectation_from_probs, group_by_cover, Hamiltonian, MeasurementGroup, PauliTerm};
use qsim::Statevector;

/// A Hamiltonian partitioned into cover-based measurement groups — the
/// baseline circuit set the paper's "Traditional VQA" executes every
/// iteration (one circuit per group, Section 5.3).
///
/// # Examples
///
/// ```
/// use pauli::Hamiltonian;
/// use vqe::GroupedHamiltonian;
///
/// let h = Hamiltonian::from_pairs(2, &[(1.0, "ZZ"), (0.5, "ZI"), (-0.3, "XX")]);
/// let grouped = GroupedHamiltonian::new(&h);
/// assert_eq!(grouped.num_groups(), 2); // {ZZ, ZI} and {XX}
/// ```
#[derive(Clone, Debug)]
pub struct GroupedHamiltonian {
    num_qubits: usize,
    terms: Vec<PauliTerm>,
    groups: Vec<MeasurementGroup>,
    identity_offset: f64,
}

impl GroupedHamiltonian {
    /// Groups the measurable terms of `hamiltonian` by trivial qubit
    /// commutation.
    pub fn new(hamiltonian: &Hamiltonian) -> Self {
        let terms: Vec<PauliTerm> = hamiltonian
            .measurable_terms()
            .into_iter()
            .cloned()
            .collect();
        let strings: Vec<_> = terms.iter().map(|t| t.string().clone()).collect();
        let groups = group_by_cover(&strings);
        GroupedHamiltonian {
            num_qubits: hamiltonian.num_qubits(),
            terms,
            groups,
            identity_offset: hamiltonian.identity_offset(),
        }
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The number of measurement groups (baseline circuits per iteration).
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// The measurement groups.
    pub fn groups(&self) -> &[MeasurementGroup] {
        &self.groups
    }

    /// The measurable (non-identity) terms the groups index into.
    pub fn terms(&self) -> &[PauliTerm] {
        &self.terms
    }

    /// The constant identity offset added to every energy estimate.
    pub fn identity_offset(&self) -> f64 {
        self.identity_offset
    }

    /// Computes the energy from one outcome PMF per group.
    ///
    /// `pmfs[i]` must be a distribution over a superset of the measured
    /// qubits of `groups()[i]` (its basis support) — either the full
    /// register (measure-all execution, JigSaw Output-PMFs) or exactly the
    /// support.
    ///
    /// # Panics
    ///
    /// Panics if the PMF list length mismatches or a group's support is not
    /// covered by its PMF.
    pub fn energy_from_pmfs(&self, pmfs: &[Pmf]) -> f64 {
        assert_eq!(
            pmfs.len(),
            self.groups.len(),
            "{} PMFs for {} groups",
            pmfs.len(),
            self.groups.len()
        );
        let mut energy = self.identity_offset;
        for (group, pmf) in self.groups.iter().zip(pmfs) {
            for &member in &group.members {
                let term = &self.terms[member];
                energy +=
                    term.coeff() * expectation_from_probs(term.string(), pmf.probs(), pmf.qubits());
            }
        }
        energy
    }

    /// Runs every group circuit on the executor against a prepared ansatz
    /// state — measuring the full register, as Qiskit-style VQE does — and
    /// returns the measured energy (the baseline VQA objective).
    pub fn measure(&self, executor: &mut SimExecutor, state: &Statevector) -> f64 {
        let pmfs: Vec<Pmf> = self
            .groups
            .iter()
            .map(|g| executor.run_prepared_all(state, &g.basis))
            .collect();
        self.energy_from_pmfs(&pmfs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnoise::DeviceModel;
    use qsim::Circuit;

    fn tfim() -> Hamiltonian {
        Hamiltonian::from_pairs(2, &[(0.5, "II"), (-1.0, "ZZ"), (-0.5, "XI"), (-0.5, "IX")])
    }

    #[test]
    fn grouping_excludes_identity() {
        let g = GroupedHamiltonian::new(&tfim());
        assert_eq!(g.identity_offset(), 0.5);
        assert_eq!(g.terms().len(), 3);
        // ZZ alone; XI and IX merge? XI and IX don't cover each other →
        // cover-grouping keeps them separate unless a seed covers both.
        assert!(g.num_groups() >= 2);
    }

    #[test]
    fn noiseless_measurement_matches_exact_expectation() {
        let h = tfim();
        let grouped = GroupedHamiltonian::new(&h);
        let mut exec = SimExecutor::exact(DeviceModel::noiseless(2), 1);
        let mut st = Statevector::zero(2);
        let mut c = Circuit::new(2);
        c.ry(0, 0.8).cx(0, 1).rz(1, 0.3);
        st.apply_circuit(&c);
        let measured = grouped.measure(&mut exec, &st);
        assert!((measured - h.expectation(&st)).abs() < 1e-10);
        assert_eq!(exec.circuits_executed(), grouped.num_groups() as u64);
    }

    #[test]
    fn noisy_measurement_is_biased() {
        // On |00⟩, Z-expectations shrink under symmetric readout noise.
        let h = Hamiltonian::from_pairs(2, &[(1.0, "ZZ")]);
        let grouped = GroupedHamiltonian::new(&h);
        let mut exec = SimExecutor::exact(DeviceModel::uniform(2, 0.1), 1);
        let st = Statevector::zero(2);
        let e = grouped.measure(&mut exec, &st);
        // <ZZ> = (1-2p)² = 0.64 under 10% symmetric flips on both qubits.
        assert!((e - 0.64).abs() < 1e-10, "{e}");
    }

    #[test]
    fn energy_from_pmfs_validates_shape() {
        let grouped = GroupedHamiltonian::new(&tfim());
        let wrong: Vec<Pmf> = Vec::new();
        let result = std::panic::catch_unwind(|| grouped.energy_from_pmfs(&wrong));
        assert!(result.is_err());
    }

    #[test]
    fn identity_only_hamiltonian_measures_its_offset() {
        let h = Hamiltonian::from_pairs(2, &[(4.2, "II")]);
        let grouped = GroupedHamiltonian::new(&h);
        assert_eq!(grouped.num_groups(), 0);
        assert_eq!(grouped.energy_from_pmfs(&[]), 4.2);
    }
}
