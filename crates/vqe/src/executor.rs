//! Noisy circuit execution with cost accounting.

use crate::basis::basis_rotation;
use mitigation::Pmf;
use pauli::PauliString;
use qnoise::{apply_depolarizing, apply_readout_errors, DeviceModel, ReadoutError};
use qsim::shard::auto_shard_count;
use qsim::{
    CapacityError, Circuit, CircuitPlan, FaultInjection, FaultSchedule, Parallelism, PlanCache,
    ShardPlan, ShardedState, Sharding, SharedPlanCache, Statevector, TransportError, TransportMode,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Why state preparation could not produce a statevector: either the state
/// would not fit (admission control refused the allocation up front), or —
/// under the sharded executor with a message-passing transport — a rank
/// failed mid-plan and the error surfaced through the transport seam.
///
/// Schedulers branch on the two arms differently: a [`CapacityError`] is a
/// property of the *request* (re-submitting won't help on this host), while
/// a [`TransportError`] is a property of the *execution* (the job may be
/// retried on a fresh state).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PrepareError {
    /// The state allocation was refused before any simulation ran.
    Capacity(CapacityError),
    /// A shard-transport failure interrupted sharded execution.
    Transport(TransportError),
}

impl PrepareError {
    /// The capacity refusal, if that is what this error is.
    pub fn capacity(&self) -> Option<&CapacityError> {
        match self {
            PrepareError::Capacity(e) => Some(e),
            PrepareError::Transport(_) => None,
        }
    }

    /// The transport failure, if that is what this error is.
    pub fn transport(&self) -> Option<&TransportError> {
        match self {
            PrepareError::Capacity(_) => None,
            PrepareError::Transport(e) => Some(e),
        }
    }
}

impl std::fmt::Display for PrepareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrepareError::Capacity(e) => e.fmt(f),
            PrepareError::Transport(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for PrepareError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PrepareError::Capacity(e) => Some(e),
            PrepareError::Transport(e) => Some(e),
        }
    }
}

impl From<CapacityError> for PrepareError {
    fn from(e: CapacityError) -> Self {
        PrepareError::Capacity(e)
    }
}

impl From<TransportError> for PrepareError {
    fn from(e: TransportError) -> Self {
        PrepareError::Transport(e)
    }
}

/// Executes measurement circuits on a simulated noisy device, metering the
/// number of circuits submitted — the paper's quantum-computational Cost
/// metric (Section 5.3).
///
/// Noise model per execution:
///
/// 1. the ideal outcome distribution over the measured qubits is computed
///    exactly from the statevector;
/// 2. an optional circuit-level depolarizing channel stands in for gate and
///    decoherence noise;
/// 3. the measured logical qubits are mapped onto the device's best
///    physical qubits (subset circuits therefore land on the good readout
///    sites, as JigSaw prescribes), and each physical qubit's readout
///    confusion — amplified by measurement crosstalk according to how many
///    qubits are read out simultaneously — is applied exactly;
/// 4. with finite `shots`, the distribution is sampled and the empirical
///    PMF returned; in exact mode the noisy distribution itself is
///    returned.
///
/// # Examples
///
/// ```
/// use qnoise::DeviceModel;
/// use qsim::Statevector;
/// use vqe::SimExecutor;
///
/// let mut exec = SimExecutor::new(DeviceModel::mumbai_like(), 1024, 7);
/// let state = Statevector::zero(3);
/// let basis: pauli::PauliString = "ZZI".parse().unwrap();
/// let pmf = exec.run_prepared(&state, &basis);
/// assert_eq!(pmf.qubits(), &[0, 1]);
/// assert_eq!(exec.circuits_executed(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct SimExecutor {
    device: DeviceModel,
    shots: u64,
    rng: StdRng,
    circuits_executed: u64,
    exact: bool,
    parallelism: Parallelism,
    sharding: Sharding,
    transport: TransportMode,
    /// Per-session chaos draws: each sharded preparation session draws
    /// its [`FaultInjection`] from this schedule (none by default).
    fault_schedule: FaultSchedule,
    /// The schedule stream this executor draws from — supervisors give
    /// each retry attempt a distinct stream.
    fault_stream: u64,
    /// Preparation sessions opened so far: the schedule's session index,
    /// advanced deterministically (batches advance by batch length, so
    /// parallel fan-out draws the same faults as sequential execution).
    fault_sessions: u64,
    /// Compiled-plan cache keyed by circuit structure: SPSA evaluations,
    /// subset/Global measurement rotations and MBM circuits all share the
    /// handful of shapes a VQE run executes, so after the first iteration
    /// every simulation rebinds a cached plan instead of re-analyzing.
    /// Also memoizes sharded-execution analyses per structure.
    plans: PlanCache,
    /// When set, planning goes through this process-shared cache instead
    /// of the private one — see [`SimExecutor::with_shared_plans`].
    shared_plans: Option<SharedPlanCache>,
}

impl SimExecutor {
    /// A sampling executor with `shots` shots per circuit.
    ///
    /// # Panics
    ///
    /// Panics if `shots == 0`.
    pub fn new(device: DeviceModel, shots: u64, seed: u64) -> Self {
        assert!(shots > 0, "need at least one shot");
        SimExecutor {
            device,
            shots,
            rng: StdRng::seed_from_u64(seed),
            circuits_executed: 0,
            exact: false,
            parallelism: Parallelism::Auto,
            sharding: Sharding::Off,
            transport: TransportMode::from_env(),
            fault_schedule: FaultSchedule::none(),
            fault_stream: 0,
            fault_sessions: 0,
            plans: PlanCache::new(),
            shared_plans: None,
        }
    }

    /// An exact-distribution executor: noise channels are applied but no
    /// shot sampling is performed. Useful for isolating measurement-error
    /// effects from shot noise.
    pub fn exact(device: DeviceModel, seed: u64) -> Self {
        SimExecutor {
            device,
            shots: 1,
            rng: StdRng::seed_from_u64(seed),
            circuits_executed: 0,
            exact: true,
            parallelism: Parallelism::Auto,
            sharding: Sharding::Off,
            transport: TransportMode::from_env(),
            fault_schedule: FaultSchedule::none(),
            fault_stream: 0,
            fault_sessions: 0,
            plans: PlanCache::new(),
            shared_plans: None,
        }
    }

    /// Routes this executor's circuit planning through a process-shared
    /// [`SharedPlanCache`] instead of its private cache. Executors for
    /// different jobs — or different tenants — running the same ansatz
    /// family then hit each other's compiled structures: the scheduler
    /// tier (`sched::JobQueue`) hands every job executor one shared
    /// cache. Plans are deterministic artifacts, so sharing never
    /// changes results.
    ///
    /// ```
    /// use qnoise::DeviceModel;
    /// use qsim::{Circuit, SharedPlanCache};
    /// use vqe::SimExecutor;
    ///
    /// let shared = SharedPlanCache::new();
    /// let mut a = SimExecutor::new(DeviceModel::noiseless(2), 16, 1)
    ///     .with_shared_plans(shared.clone());
    /// let mut b = SimExecutor::new(DeviceModel::noiseless(2), 16, 2)
    ///     .with_shared_plans(shared.clone());
    /// let mut c = Circuit::new(2);
    /// c.ry(0, 0.3).cx(0, 1);
    /// a.prepare(&c);
    /// let mut c2 = Circuit::new(2);
    /// c2.ry(0, -0.8).cx(0, 1);
    /// b.prepare(&c2); // same structure: a hit through the other executor
    /// assert_eq!(shared.stats(), (1, 1, 1));
    /// assert_eq!(b.plan_cache_stats(), (1, 1, 1)); // reports the shared cache
    /// ```
    pub fn with_shared_plans(mut self, shared: SharedPlanCache) -> Self {
        self.shared_plans = Some(shared);
        self
    }

    /// Sets how statevector simulation spreads gate kernels across
    /// threads (default [`Parallelism::Auto`]).
    ///
    /// Serial and threaded simulation produce bit-identical amplitudes,
    /// so this knob never changes results — use it to pin executors to
    /// the serial path when many run concurrently (e.g. inside
    /// `parallel_map`-style trial fan-outs) and thread oversubscription
    /// would hurt.
    ///
    /// ```
    /// use qnoise::DeviceModel;
    /// use qsim::Parallelism;
    /// use vqe::SimExecutor;
    ///
    /// let exec = SimExecutor::new(DeviceModel::noiseless(2), 128, 1)
    ///     .with_parallelism(Parallelism::Serial);
    /// assert_eq!(exec.parallelism(), Parallelism::Serial);
    /// ```
    pub fn with_parallelism(mut self, mode: Parallelism) -> Self {
        self.parallelism = mode;
        self
    }

    /// The statevector parallelism mode circuits are simulated with.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Sets how state preparation decomposes the amplitude plane across
    /// shards (default [`Sharding::Off`]). Sharded execution is
    /// bit-identical to the dense plane — local ops run shard-parallel,
    /// global-qubit ops go through explicit exchanges (see
    /// [`qsim::shard`]) — so this knob never changes results either; it
    /// exists for registers past the cache (and, eventually, node)
    /// capacity of one plane. [`Sharding::Auto`] consults the circuit's
    /// [`qsim::CircuitStats::state_bytes`] estimate and the
    /// `VARSAW_NUM_SHARDS` override.
    ///
    /// ```
    /// use qnoise::DeviceModel;
    /// use qsim::Sharding;
    /// use vqe::SimExecutor;
    ///
    /// let exec = SimExecutor::new(DeviceModel::noiseless(2), 128, 1)
    ///     .with_sharding(Sharding::Auto);
    /// assert_eq!(exec.sharding(), Sharding::Auto);
    /// ```
    pub fn with_sharding(mut self, sharding: Sharding) -> Self {
        if let Sharding::Shards(s) = sharding {
            assert!(s.is_power_of_two(), "shard count {s} is not a power of two");
        }
        self.sharding = sharding;
        self
    }

    /// The sharding mode state preparation uses.
    pub fn sharding(&self) -> Sharding {
        self.sharding
    }

    /// Sets which [`TransportMode`] sharded preparation moves amplitudes
    /// through (default: the `VARSAW_SHARD_TRANSPORT` environment knob,
    /// falling back to zero-copy in-process swaps). Both backends are
    /// bit-identical, so this knob never changes results; the
    /// message-passing backend exists to rehearse multi-node execution
    /// and exercise the failure paths schedulers must handle.
    ///
    /// ```
    /// use qnoise::DeviceModel;
    /// use qsim::TransportMode;
    /// use vqe::SimExecutor;
    ///
    /// let exec = SimExecutor::new(DeviceModel::noiseless(2), 128, 1)
    ///     .with_transport(TransportMode::Channel);
    /// assert_eq!(exec.transport(), TransportMode::Channel);
    /// ```
    pub fn with_transport(mut self, mode: TransportMode) -> Self {
        self.transport = mode;
        self
    }

    /// The shard-transport backend sharded preparation uses.
    pub fn transport(&self) -> TransportMode {
        self.transport
    }

    /// Installs a seed-deterministic [`FaultSchedule`] for sharded
    /// preparation: each preparation session draws one
    /// [`FaultInjection`] at schedule coordinate `(stream, session
    /// index)`, where the session index counts this executor's prepares.
    /// Unsharded preparation opens no transport session and never
    /// faults. Supervisors give every retry attempt a distinct `stream`
    /// so attempts draw independently while each run stays exactly
    /// reproducible.
    pub fn with_fault_schedule(mut self, schedule: FaultSchedule, stream: u64) -> Self {
        self.fault_schedule = schedule;
        self.fault_stream = stream;
        self
    }

    /// The shard count preparation of `circuit` resolves to.
    fn resolve_shards(&self, circuit: &Circuit) -> usize {
        match self.sharding {
            Sharding::Off => 1,
            Sharding::Auto => auto_shard_count(&circuit.stats()),
            Sharding::Shards(s) => s.min(1 << circuit.num_qubits().min(30)),
        }
    }

    /// The compiled plan for `circuit`, through the shared cache when one
    /// is attached and the private cache otherwise.
    fn plan(&mut self, circuit: &Circuit) -> CircuitPlan {
        match &self.shared_plans {
            Some(shared) => shared.plan(circuit),
            None => self.plans.plan(circuit),
        }
    }

    /// The memoized sharded-execution plan for `plan` on `shards` shards
    /// (`None` for unsharded execution). Routes through the same cache as
    /// [`SimExecutor::plan`], so a rebind of a known ansatz shape skips
    /// the layout re-analysis (ROADMAP carry-over).
    fn shard_plan(&mut self, plan: &CircuitPlan, shards: usize) -> Option<ShardPlan> {
        if shards <= 1 {
            return None;
        }
        Some(match &self.shared_plans {
            Some(shared) => shared.shard_plan(plan, shards),
            None => self.plans.shard_plan(plan, shards),
        })
    }

    /// Simulates a compiled plan from `|0…0⟩` on the dense plane or the
    /// sharded executor, surfacing allocation refusals and transport
    /// failures as a typed [`PrepareError`]. All paths are bit-identical.
    /// `fault` is the chaos injection drawn for this session (only
    /// sharded execution opens a transport session, so only it can
    /// fault); a failed session's poisoned state is dropped here — the
    /// caller never sees it.
    fn try_simulate(
        plan: &CircuitPlan,
        shard_plan: Option<&ShardPlan>,
        mode: Parallelism,
        transport: TransportMode,
        fault: FaultInjection,
    ) -> Result<Statevector, PrepareError> {
        if let Some(sp) = shard_plan {
            let mut st = ShardedState::try_zero(plan.num_qubits(), sp.num_shards())?
                .with_parallelism(mode)
                .with_transport(transport)
                .with_fault(fault);
            st.try_apply_shard_plan(sp)?;
            Ok(st.try_to_statevector()?)
        } else {
            let mut st = Statevector::try_zero(plan.num_qubits())?;
            st.apply_plan_with(plan, mode);
            Ok(st)
        }
    }

    /// The chaos injection the schedule draws for preparation session
    /// `session` of a sharded plan (none when unsharded: no transport).
    fn draw_fault(&self, session: u64, shard_plan: Option<&ShardPlan>) -> FaultInjection {
        match shard_plan {
            Some(sp) => self
                .fault_schedule
                .injection(self.fault_stream, session, sp.num_shards()),
            None => FaultInjection::none(),
        }
    }

    /// Simulates `circuit` from `|0…0⟩` under this executor's
    /// [`Parallelism`] mode, without measuring or metering cost — the
    /// state-preparation step evaluators run before their measurement
    /// circuits. Routing preparation through the executor keeps the
    /// parallelism knob in charge of *every* statevector pass of an
    /// evaluation, not just the basis rotations, and lets preparation hit
    /// the executor's [`PlanCache`]: a VQE iteration rebinding new angles
    /// into a known ansatz shape skips fusion re-analysis entirely.
    ///
    /// ```
    /// use qnoise::DeviceModel;
    /// use qsim::{Circuit, Parallelism};
    /// use vqe::SimExecutor;
    ///
    /// let mut exec = SimExecutor::new(DeviceModel::noiseless(2), 16, 1)
    ///     .with_parallelism(Parallelism::Serial);
    /// let mut c = Circuit::new(2);
    /// c.h(0).cx(0, 1);
    /// let state = exec.prepare(&c);
    /// assert!((state.probabilities()[0b11] - 0.5).abs() < 1e-12);
    /// assert_eq!(exec.circuits_executed(), 0); // preparation is not metered
    /// ```
    pub fn prepare(&mut self, circuit: &Circuit) -> Statevector {
        self.try_prepare(circuit).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`SimExecutor::prepare`], surfacing state-allocation failures and
    /// shard-transport failures as a typed [`PrepareError`] instead of
    /// panicking — the admission-control and fault seam job schedulers
    /// branch on. Covers every execution tier: the dense plane (serial or
    /// threaded) probes [`Statevector::try_zero`], the sharded executor
    /// probes [`ShardedState::try_zero`](qsim::ShardedState::try_zero) and
    /// surfaces rank failures from
    /// [`try_apply_shard_plan`](qsim::ShardedState::try_apply_shard_plan).
    ///
    /// ```
    /// use qnoise::DeviceModel;
    /// use qsim::Circuit;
    /// use vqe::SimExecutor;
    ///
    /// let mut exec = SimExecutor::new(DeviceModel::noiseless(2), 16, 1);
    /// assert!(exec.try_prepare(&Circuit::new(3)).is_ok());
    /// let err = exec.try_prepare(&Circuit::new(33)).unwrap_err();
    /// assert_eq!(err.capacity().unwrap().num_qubits(), 33);
    /// ```
    pub fn try_prepare(&mut self, circuit: &Circuit) -> Result<Statevector, PrepareError> {
        let plan = self.plan(circuit);
        let sp = self.shard_plan(&plan, self.resolve_shards(circuit));
        let fault = self.draw_fault(self.fault_sessions, sp.as_ref());
        self.fault_sessions += 1;
        Self::try_simulate(&plan, sp.as_ref(), self.parallelism, self.transport, fault)
    }

    /// Prepares one state per circuit against the shared [`PlanCache`] —
    /// the batched twin of [`SimExecutor::prepare`], and the front half
    /// of a [`SimExecutor::run_batch`] dispatch. Circuits sharing one
    /// structure (an SPSA ± probe pair, multi-start restarts, a subset
    /// family) compile once and rebind per entry; on multi-core hosts the
    /// simulations fan out across [`parallel::num_threads`] workers (each
    /// pinned serial inside, so the batch is never oversubscribed).
    ///
    /// Results are **identical** to calling `prepare` once per circuit,
    /// in order — preparation consumes no randomness and every execution
    /// path is bit-identical.
    ///
    /// ```
    /// use qnoise::DeviceModel;
    /// use qsim::Circuit;
    /// use vqe::SimExecutor;
    ///
    /// let mut exec = SimExecutor::new(DeviceModel::noiseless(2), 16, 1);
    /// let mut a = Circuit::new(2);
    /// a.ry(0, 0.3).cx(0, 1);
    /// let mut b = Circuit::new(2);
    /// b.ry(0, -1.1).cx(0, 1); // same structure: plan-cache hit
    /// let states = exec.prepare_batch(&[a, b]);
    /// assert_eq!(states.len(), 2);
    /// assert_eq!(exec.plan_cache_stats().2, 1); // one compile, one rebind
    /// ```
    pub fn prepare_batch(&mut self, circuits: &[Circuit]) -> Vec<Statevector> {
        self.try_prepare_batch(circuits)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`SimExecutor::prepare_batch`], surfacing state-allocation and
    /// shard-transport failures as a typed [`PrepareError`] (the first one
    /// encountered, in circuit order) instead of panicking.
    pub fn try_prepare_batch(
        &mut self,
        circuits: &[Circuit],
    ) -> Result<Vec<Statevector>, PrepareError> {
        // Per-entry session indices are assigned up front (base + i), so
        // the batch draws the exact faults sequential prepares would —
        // regardless of whether the fan-out below runs threaded.
        let base_session = self.fault_sessions;
        self.fault_sessions += circuits.len() as u64;
        let plans: Vec<(CircuitPlan, Option<ShardPlan>, FaultInjection)> = circuits
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let plan = self.plan(c);
                let sp = self.shard_plan(&plan, self.resolve_shards(c));
                let fault = self.draw_fault(base_session + i as u64, sp.as_ref());
                (plan, sp, fault)
            })
            .collect();
        let transport = self.transport;
        let states: Vec<Result<Statevector, PrepareError>> = if self.parallelism
            != Parallelism::Serial
            && plans.len() > 1
            && parallel::num_threads() > 1
        {
            parallel::parallel_map(plans, move |(plan, sp, fault)| {
                Self::try_simulate(plan, sp.as_ref(), Parallelism::Serial, transport, *fault)
            })
        } else {
            plans
                .iter()
                .map(|(plan, sp, fault)| {
                    Self::try_simulate(plan, sp.as_ref(), self.parallelism, transport, *fault)
                })
                .collect()
        };
        states.into_iter().collect()
    }

    /// Plan-cache statistics `(structures, hits, misses)` — how often
    /// simulations rebound a cached circuit structure instead of
    /// re-analyzing it. Reports the shared cache when one is attached
    /// ([`SimExecutor::with_shared_plans`]), so schedulers can observe
    /// cross-tenant sharing through any participating executor.
    pub fn plan_cache_stats(&self) -> (usize, u64, u64) {
        match &self.shared_plans {
            Some(shared) => shared.stats(),
            None => (self.plans.len(), self.plans.hits(), self.plans.misses()),
        }
    }

    /// Shard-analysis cache counters `(hits, misses)` — how often sharded
    /// preparation rebound a memoized layout analysis instead of
    /// re-analyzing (see [`qsim::PlanCache::shard_plan`]). Reports the
    /// shared cache when one is attached.
    pub fn shard_cache_stats(&self) -> (u64, u64) {
        match &self.shared_plans {
            Some(shared) => shared.shard_stats(),
            None => self.plans.shard_stats(),
        }
    }

    /// The device model.
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    /// Shots per circuit (meaningless in exact mode).
    pub fn shots(&self) -> u64 {
        self.shots
    }

    /// The number of circuits submitted so far.
    pub fn circuits_executed(&self) -> u64 {
        self.circuits_executed
    }

    /// Resets the circuit counter (e.g. between budgeted runs).
    pub fn reset_circuits_executed(&mut self) {
        self.circuits_executed = 0;
    }

    /// The calibrated (isolated, crosstalk-free) readout errors of the
    /// physical qubits that `k` measured logical qubits map onto.
    ///
    /// This is what a matrix-based mitigation calibration would know:
    /// it does *not* include the crosstalk amplification present when many
    /// qubits are measured simultaneously, so MBM built from it remains
    /// realistically imperfect.
    pub fn calibration(&self, k: usize) -> Vec<ReadoutError> {
        self.device
            .best_qubits(k)
            .into_iter()
            .map(|q| self.device.readout(q))
            .collect()
    }

    /// Runs a measurement of `basis` on an already-prepared state: appends
    /// the basis rotation, measures the basis support, applies the noise
    /// model, and returns the (logical-qubit-labelled) outcome PMF.
    ///
    /// Identity bases measure nothing and are rejected.
    ///
    /// # Panics
    ///
    /// Panics if the basis is all-identity, acts on more qubits than the
    /// state, or the device has fewer qubits than the measurement needs.
    pub fn run_prepared(&mut self, state: &Statevector, basis: &PauliString) -> Pmf {
        let measured = basis.support();
        assert!(
            !measured.is_empty(),
            "cannot execute a measurement of the identity basis"
        );
        let mut st = {
            let _span = telemetry::span(telemetry::Stage::SweepSerial);
            state.clone()
        };
        let plan = self.plan(&basis_rotation(basis));
        st.apply_plan_with(&plan, self.parallelism);
        self.finish(st.marginal_probabilities(&measured), measured)
    }

    /// Runs a measurement of `basis` on an already-prepared state,
    /// measuring **every** qubit of the state (identity positions in the
    /// computational basis) — how Qiskit-style VQE executes its circuits,
    /// and how JigSaw's Global runs produce their full-width Global-PMF
    /// (Fig.3). All qubits being read out simultaneously exposes the run to
    /// maximum measurement crosstalk; this is the cost the subset circuits
    /// avoid.
    ///
    /// # Panics
    ///
    /// Panics if the basis acts on more qubits than the state or the device
    /// is too small.
    pub fn run_prepared_all(&mut self, state: &Statevector, basis: &PauliString) -> Pmf {
        let mut st = {
            let _span = telemetry::span(telemetry::Stage::SweepSerial);
            state.clone()
        };
        let plan = self.plan(&basis_rotation(basis));
        st.apply_plan_with(&plan, self.parallelism);
        let measured: Vec<usize> = (0..state.num_qubits()).collect();
        self.finish(st.marginal_probabilities(&measured), measured)
    }

    /// Runs an explicit circuit from `|0…0⟩` and measures `measured` in the
    /// computational basis.
    ///
    /// # Panics
    ///
    /// Panics if `measured` is empty or out of range.
    pub fn run_circuit(&mut self, circuit: &Circuit, measured: &[usize]) -> Pmf {
        assert!(!measured.is_empty(), "no qubits to measure");
        let mut st = Statevector::zero(circuit.num_qubits());
        let plan = self.plan(circuit);
        st.apply_plan_with(&plan, self.parallelism);
        self.finish(st.marginal_probabilities(measured), measured.to_vec())
    }

    /// Runs a whole family of measurements — SPSA ± probes, a subset
    /// family, the Globals of an iteration — as **one batched dispatch**,
    /// returning one PMF per job in order.
    ///
    /// Results (and the executor's RNG stream, cost counter, and plan
    /// cache) are **exactly** those of the equivalent sequence of
    /// [`SimExecutor::run_prepared`] / [`SimExecutor::run_prepared_all`]
    /// calls, seed for seed — regression-tested, so batching is always
    /// safe. What changes is the cost: the batch is *planned* up front
    /// (rotation plans bound through the cache, measured-qubit sets
    /// resolved once), the deterministic statevector work runs with a
    /// reused scratch plane (and fans out across threads on multi-core
    /// hosts — each job pinned serial inside), full-register reads skip
    /// the generic marginal bit-gather for the direct probability pass,
    /// and only the noise + sampling stage — which must consume the RNG
    /// in job order — stays sequential.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as the equivalent sequential
    /// calls (identity bases, register/device size mismatches).
    ///
    /// ```
    /// use qnoise::DeviceModel;
    /// use qsim::Statevector;
    /// use vqe::{BatchJob, SimExecutor};
    ///
    /// let mut exec = SimExecutor::new(DeviceModel::mumbai_like(), 256, 9);
    /// let state = Statevector::zero(3);
    /// let zz: pauli::PauliString = "ZZI".parse().unwrap();
    /// let xx: pauli::PauliString = "IXX".parse().unwrap();
    /// let pmfs = exec.run_batch(&[
    ///     BatchJob::global(&state, &zz),
    ///     BatchJob::subset(&state, &xx),
    /// ]);
    /// assert_eq!(pmfs.len(), 2);
    /// assert_eq!(pmfs[1].qubits(), &[1, 2]);
    /// assert_eq!(exec.circuits_executed(), 2);
    /// ```
    pub fn run_batch(&mut self, jobs: &[BatchJob<'_>]) -> Vec<Pmf> {
        struct Planned {
            plan: CircuitPlan,
            measured: Vec<usize>,
            /// Whether `measured` is the full register in index order —
            /// `support()` is ascending, so length alone decides — which
            /// unlocks the direct probability read.
            full_register: bool,
        }
        let planned: Vec<Planned> = jobs
            .iter()
            .map(|job| {
                let measured: Vec<usize> = if job.measure_all {
                    (0..job.state.num_qubits()).collect()
                } else {
                    job.basis.support()
                };
                assert!(
                    !measured.is_empty(),
                    "cannot execute a measurement of the identity basis"
                );
                let full_register = measured.len() == job.state.num_qubits();
                Planned {
                    plan: self.plan(&basis_rotation(job.basis)),
                    measured,
                    full_register,
                }
            })
            .collect();

        // Rotate and read one job: bit-identical to `run_prepared`'s
        // clone + rotate + marginal (the full-register read and the
        // in-place no-rotation read produce the same bits as the generic
        // path; `scratch` only recycles the allocation).
        let read = |job: &BatchJob<'_>,
                    pl: &Planned,
                    scratch: &mut Option<Statevector>,
                    mode: Parallelism|
         -> Vec<f64> {
            let rotated: &Statevector = if pl.plan.op_count() == 0 {
                job.state
            } else {
                let st = {
                    let _span = telemetry::span(telemetry::Stage::SweepSerial);
                    match scratch {
                        Some(st) if st.num_qubits() == job.state.num_qubits() => {
                            st.amplitudes_mut().copy_from_slice(job.state.amplitudes());
                            st
                        }
                        _ => scratch.insert(job.state.clone()),
                    }
                };
                st.apply_plan_with(&pl.plan, mode);
                st
            };
            if pl.full_register {
                // `mode` rides along so jobs pinned serial inside the
                // batch fan-out never nest a second worker scope.
                rotated.probabilities_with(mode)
            } else {
                rotated.marginal_probabilities(&pl.measured)
            }
        };

        let probs: Vec<Vec<f64>> = if self.parallelism != Parallelism::Serial
            && jobs.len() > 1
            && parallel::num_threads() > 1
        {
            let indices: Vec<usize> = (0..jobs.len()).collect();
            parallel::parallel_map(indices, |&i| {
                let mut scratch = None;
                read(&jobs[i], &planned[i], &mut scratch, Parallelism::Serial)
            })
        } else {
            let mut scratch: Option<Statevector> = None;
            jobs.iter()
                .zip(&planned)
                .map(|(job, pl)| read(job, pl, &mut scratch, self.parallelism))
                .collect()
        };

        // Noise + sampling consume the RNG in job order: sequential by
        // construction, exactly as N single runs would.
        probs
            .into_iter()
            .zip(planned)
            .map(|(p, pl)| self.finish(p, pl.measured))
            .collect()
    }

    fn finish(&mut self, mut probs: Vec<f64>, measured: Vec<usize>) -> Pmf {
        let m = measured.len();
        assert!(
            m <= self.device.num_qubits(),
            "measurement of {m} qubits exceeds the {}-qubit device",
            self.device.num_qubits()
        );
        self.circuits_executed += 1;

        if self.device.depolarizing() > 0.0 {
            apply_depolarizing(&mut probs, self.device.depolarizing());
        }
        // Map measured logical qubits onto the best physical qubits;
        // crosstalk scales with the number of simultaneous measurements.
        let physical = self.device.best_qubits(m);
        let errors: Vec<ReadoutError> = physical
            .iter()
            .map(|&q| self.device.effective_readout(q, m))
            .collect();
        apply_readout_errors(&mut probs, &errors);

        if self.exact {
            Pmf::new(measured, probs)
        } else {
            // The channel pushes above time themselves (NoiseSampling
            // spans inside qnoise); only the shot draw is timed here so
            // the stage is never double-counted.
            let _span = telemetry::span(telemetry::Stage::NoiseSampling);
            let counts = qsim::sample_counts(&probs, self.shots, &mut self.rng);
            Pmf::new(measured, counts.iter().map(|&c| c as f64).collect())
        }
    }
}

/// One measurement of a batched dispatch: a prepared state and the Pauli
/// basis to measure it in — see [`SimExecutor::run_batch`].
#[derive(Clone, Copy, Debug)]
pub struct BatchJob<'a> {
    state: &'a Statevector,
    basis: &'a PauliString,
    measure_all: bool,
}

impl<'a> BatchJob<'a> {
    /// Measure only the basis' support, on the best physical qubits —
    /// the subset-circuit shape, equivalent to
    /// [`SimExecutor::run_prepared`].
    pub fn subset(state: &'a Statevector, basis: &'a PauliString) -> Self {
        BatchJob {
            state,
            basis,
            measure_all: false,
        }
    }

    /// Measure every qubit of the state (identity basis positions read
    /// in the computational basis) — the Global-circuit shape,
    /// equivalent to [`SimExecutor::run_prepared_all`].
    pub fn global(state: &'a Statevector, basis: &'a PauliString) -> Self {
        BatchJob {
            state,
            basis,
            measure_all: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    #[test]
    fn noiseless_exact_execution_reproduces_ideal_marginals() {
        let mut exec = SimExecutor::exact(DeviceModel::noiseless(3), 1);
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let mut st = Statevector::zero(3);
        st.apply_circuit(&c);
        let pmf = exec.run_prepared(&st, &ps("ZZZ"));
        assert!((pmf.prob(0b000) - 0.5).abs() < 1e-12);
        assert!((pmf.prob(0b111) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn readout_noise_shows_up_in_the_distribution() {
        let mut exec = SimExecutor::exact(DeviceModel::uniform(2, 0.1), 1);
        let st = Statevector::zero(2);
        let pmf = exec.run_prepared(&st, &ps("ZZ"));
        assert!((pmf.prob(0b00) - 0.81).abs() < 1e-12);
        assert!((pmf.prob(0b11) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn fewer_measured_qubits_means_less_crosstalk_error() {
        // With crosstalk, a 1-qubit measurement is cleaner than the same
        // qubit measured as part of a 4-qubit readout.
        let dev = DeviceModel::new(
            "ct",
            vec![ReadoutError::symmetric(0.04); 4],
            qnoise::CrosstalkModel::new(0.3),
            0.0,
        );
        let st = Statevector::zero(4);
        let mut exec = SimExecutor::exact(dev, 1);
        let single = exec.run_prepared(&st, &ps("ZIII"));
        let full = exec.run_prepared(&st, &ps("ZZZZ"));
        let p_err_single = single.prob(1);
        let p_err_full = full.marginal(&[0]).prob(1);
        assert!(
            p_err_full > p_err_single * 1.5,
            "full {p_err_full} vs single {p_err_single}"
        );
    }

    #[test]
    fn cost_counter_increments() {
        let mut exec = SimExecutor::new(DeviceModel::noiseless(2), 16, 3);
        let st = Statevector::zero(2);
        exec.run_prepared(&st, &ps("ZI"));
        exec.run_prepared(&st, &ps("IZ"));
        assert_eq!(exec.circuits_executed(), 2);
        exec.reset_circuits_executed();
        assert_eq!(exec.circuits_executed(), 0);
    }

    #[test]
    fn sampled_pmf_totals_one() {
        let mut exec = SimExecutor::new(DeviceModel::mumbai_like(), 256, 5);
        let mut st = Statevector::zero(2);
        let mut c = Circuit::new(2);
        c.h(0);
        st.apply_circuit(&c);
        let pmf = exec.run_prepared(&st, &ps("XZ"));
        assert!((pmf.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(pmf.qubits(), &[0, 1]);
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let run = |seed| {
            let mut exec = SimExecutor::new(DeviceModel::mumbai_like(), 128, seed);
            let mut st = Statevector::zero(2);
            let mut c = Circuit::new(2);
            c.h(0).cx(0, 1);
            st.apply_circuit(&c);
            exec.run_prepared(&st, &ps("ZZ")).probs().to_vec()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn parallelism_mode_never_changes_results() {
        // Statevector execution is bit-identical across modes, and the
        // sampling RNG stream is untouched by the choice, so whole PMFs
        // must match exactly.
        let run = |mode: Parallelism| {
            let mut exec =
                SimExecutor::new(DeviceModel::mumbai_like(), 256, 11).with_parallelism(mode);
            let mut c = Circuit::new(3);
            c.h(0).cx(0, 1).cx(1, 2).ry(2, 0.7);
            let mut st = Statevector::zero(3);
            st.apply_circuit(&c);
            exec.run_prepared(&st, &ps("ZXZ")).probs().to_vec()
        };
        let serial = run(Parallelism::Serial);
        assert_eq!(serial, run(Parallelism::Auto));
        assert_eq!(serial, run(Parallelism::Threads(4)));
    }

    #[test]
    fn run_circuit_measures_computational_basis() {
        let mut exec = SimExecutor::exact(DeviceModel::noiseless(2), 1);
        let mut c = Circuit::new(2);
        c.x(1);
        let pmf = exec.run_circuit(&c, &[1]);
        assert_eq!(pmf.prob(1), 1.0);
    }

    #[test]
    #[should_panic(expected = "identity basis")]
    fn identity_basis_rejected() {
        let mut exec = SimExecutor::exact(DeviceModel::noiseless(2), 1);
        exec.run_prepared(&Statevector::zero(2), &ps("II"));
    }

    /// The seed-for-seed regression the batched dispatch is specified
    /// by: `run_batch` must reproduce N sequential `run_prepared` /
    /// `run_prepared_all` calls exactly — PMFs, RNG stream, and cost
    /// counter.
    #[test]
    fn run_batch_matches_sequential_runs_seed_for_seed() {
        let make_exec = || SimExecutor::new(DeviceModel::mumbai_like(), 512, 21);
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ry(2, 0.6).cx(1, 2);
        let mut st = Statevector::zero(3);
        st.apply_circuit(&c);
        let st2 = Statevector::zero(3);
        let bases = [ps("ZZI"), ps("XZY"), ps("ZZZ"), ps("IXX")];

        let mut seq = make_exec();
        let mut expected: Vec<Pmf> = Vec::new();
        expected.push(seq.run_prepared_all(&st, &bases[0]));
        expected.push(seq.run_prepared(&st, &bases[1]));
        expected.push(seq.run_prepared_all(&st2, &bases[2]));
        expected.push(seq.run_prepared(&st2, &bases[3]));
        expected.push(seq.run_prepared(&st, &bases[0]));

        let mut batched = make_exec();
        let got = batched.run_batch(&[
            BatchJob::global(&st, &bases[0]),
            BatchJob::subset(&st, &bases[1]),
            BatchJob::global(&st2, &bases[2]),
            BatchJob::subset(&st2, &bases[3]),
            BatchJob::subset(&st, &bases[0]),
        ]);

        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(g.qubits(), e.qubits());
            assert_eq!(g.probs(), e.probs(), "batched PMF must match exactly");
        }
        assert_eq!(batched.circuits_executed(), seq.circuits_executed());
        // The RNG streams stayed in lockstep: one more run still agrees.
        assert_eq!(
            batched.run_prepared(&st, &bases[1]).probs(),
            seq.run_prepared(&st, &bases[1]).probs()
        );
    }

    #[test]
    fn run_batch_matches_sequential_in_exact_mode() {
        let mut c = Circuit::new(3);
        c.ry(0, 0.4).cx(0, 2);
        let mut st = Statevector::zero(3);
        st.apply_circuit(&c);
        let mut seq = SimExecutor::exact(DeviceModel::uniform(3, 0.05), 1);
        let mut batched = seq.clone();
        let bases = [ps("ZIZ"), ps("XYZ")];
        let expected = [
            seq.run_prepared_all(&st, &bases[0]),
            seq.run_prepared(&st, &bases[1]),
        ];
        let got = batched.run_batch(&[
            BatchJob::global(&st, &bases[0]),
            BatchJob::subset(&st, &bases[1]),
        ]);
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(g.probs(), e.probs());
        }
    }

    #[test]
    fn prepare_batch_matches_sequential_prepares() {
        let circuits: Vec<Circuit> = [0.3f64, -1.1, 2.4]
            .iter()
            .map(|&t| {
                let mut c = Circuit::new(3);
                c.ry(0, t).rz(1, 2.0 * t).cx(0, 1).cx(1, 2);
                c
            })
            .collect();
        let mut exec = SimExecutor::new(DeviceModel::noiseless(3), 16, 1);
        let batch = exec.prepare_batch(&circuits);
        let mut seq_exec = SimExecutor::new(DeviceModel::noiseless(3), 16, 1);
        for (c, b) in circuits.iter().zip(&batch) {
            assert_eq!(seq_exec.prepare(c).amplitudes(), b.amplitudes());
        }
        // One structure: one compile, two rebinds.
        assert_eq!(exec.plan_cache_stats(), (1, 2, 1));
    }

    #[test]
    fn sharded_preparation_is_bit_identical() {
        let mut c = Circuit::new(5);
        for q in 0..5 {
            c.ry(q, 0.1 + q as f64);
        }
        c.cx(0, 1).cx(1, 2).cx(2, 3).cx(3, 4).cz(0, 4);
        let mut dense = SimExecutor::new(DeviceModel::noiseless(5), 16, 2);
        let mut sharded =
            SimExecutor::new(DeviceModel::noiseless(5), 16, 2).with_sharding(Sharding::Shards(4));
        assert_eq!(
            dense.prepare(&c).amplitudes(),
            sharded.prepare(&c).amplitudes()
        );
        // And through the measured path, PMFs stay equal too.
        let st_d = dense.prepare(&c);
        let st_s = sharded.prepare(&c);
        assert_eq!(
            dense.run_prepared(&st_d, &ps("ZZIII")).probs(),
            sharded.run_prepared(&st_s, &ps("ZZIII")).probs()
        );
    }

    #[test]
    fn calibration_is_isolated_readout() {
        let dev = DeviceModel::new(
            "cal",
            vec![ReadoutError::symmetric(0.05); 3],
            qnoise::CrosstalkModel::new(0.5),
            0.0,
        );
        let exec = SimExecutor::exact(dev, 1);
        let cal = exec.calibration(3);
        // Calibration reports base rates, not crosstalk-amplified ones.
        assert!(cal.iter().all(|e| (e.average() - 0.05).abs() < 1e-12));
    }
}
