//! Noisy circuit execution with cost accounting.

use crate::basis::basis_rotation;
use mitigation::Pmf;
use pauli::PauliString;
use qnoise::{apply_depolarizing, apply_readout_errors, DeviceModel, ReadoutError};
use qsim::{Circuit, Parallelism, PlanCache, Statevector};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Executes measurement circuits on a simulated noisy device, metering the
/// number of circuits submitted — the paper's quantum-computational Cost
/// metric (Section 5.3).
///
/// Noise model per execution:
///
/// 1. the ideal outcome distribution over the measured qubits is computed
///    exactly from the statevector;
/// 2. an optional circuit-level depolarizing channel stands in for gate and
///    decoherence noise;
/// 3. the measured logical qubits are mapped onto the device's best
///    physical qubits (subset circuits therefore land on the good readout
///    sites, as JigSaw prescribes), and each physical qubit's readout
///    confusion — amplified by measurement crosstalk according to how many
///    qubits are read out simultaneously — is applied exactly;
/// 4. with finite `shots`, the distribution is sampled and the empirical
///    PMF returned; in exact mode the noisy distribution itself is
///    returned.
///
/// # Examples
///
/// ```
/// use qnoise::DeviceModel;
/// use qsim::Statevector;
/// use vqe::SimExecutor;
///
/// let mut exec = SimExecutor::new(DeviceModel::mumbai_like(), 1024, 7);
/// let state = Statevector::zero(3);
/// let basis: pauli::PauliString = "ZZI".parse().unwrap();
/// let pmf = exec.run_prepared(&state, &basis);
/// assert_eq!(pmf.qubits(), &[0, 1]);
/// assert_eq!(exec.circuits_executed(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct SimExecutor {
    device: DeviceModel,
    shots: u64,
    rng: StdRng,
    circuits_executed: u64,
    exact: bool,
    parallelism: Parallelism,
    /// Compiled-plan cache keyed by circuit structure: SPSA evaluations,
    /// subset/Global measurement rotations and MBM circuits all share the
    /// handful of shapes a VQE run executes, so after the first iteration
    /// every simulation rebinds a cached plan instead of re-analyzing.
    plans: PlanCache,
}

impl SimExecutor {
    /// A sampling executor with `shots` shots per circuit.
    ///
    /// # Panics
    ///
    /// Panics if `shots == 0`.
    pub fn new(device: DeviceModel, shots: u64, seed: u64) -> Self {
        assert!(shots > 0, "need at least one shot");
        SimExecutor {
            device,
            shots,
            rng: StdRng::seed_from_u64(seed),
            circuits_executed: 0,
            exact: false,
            parallelism: Parallelism::Auto,
            plans: PlanCache::new(),
        }
    }

    /// An exact-distribution executor: noise channels are applied but no
    /// shot sampling is performed. Useful for isolating measurement-error
    /// effects from shot noise.
    pub fn exact(device: DeviceModel, seed: u64) -> Self {
        SimExecutor {
            device,
            shots: 1,
            rng: StdRng::seed_from_u64(seed),
            circuits_executed: 0,
            exact: true,
            parallelism: Parallelism::Auto,
            plans: PlanCache::new(),
        }
    }

    /// Sets how statevector simulation spreads gate kernels across
    /// threads (default [`Parallelism::Auto`]).
    ///
    /// Serial and threaded simulation produce bit-identical amplitudes,
    /// so this knob never changes results — use it to pin executors to
    /// the serial path when many run concurrently (e.g. inside
    /// `parallel_map`-style trial fan-outs) and thread oversubscription
    /// would hurt.
    ///
    /// ```
    /// use qnoise::DeviceModel;
    /// use qsim::Parallelism;
    /// use vqe::SimExecutor;
    ///
    /// let exec = SimExecutor::new(DeviceModel::noiseless(2), 128, 1)
    ///     .with_parallelism(Parallelism::Serial);
    /// assert_eq!(exec.parallelism(), Parallelism::Serial);
    /// ```
    pub fn with_parallelism(mut self, mode: Parallelism) -> Self {
        self.parallelism = mode;
        self
    }

    /// The statevector parallelism mode circuits are simulated with.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Simulates `circuit` from `|0…0⟩` under this executor's
    /// [`Parallelism`] mode, without measuring or metering cost — the
    /// state-preparation step evaluators run before their measurement
    /// circuits. Routing preparation through the executor keeps the
    /// parallelism knob in charge of *every* statevector pass of an
    /// evaluation, not just the basis rotations, and lets preparation hit
    /// the executor's [`PlanCache`]: a VQE iteration rebinding new angles
    /// into a known ansatz shape skips fusion re-analysis entirely.
    ///
    /// ```
    /// use qnoise::DeviceModel;
    /// use qsim::{Circuit, Parallelism};
    /// use vqe::SimExecutor;
    ///
    /// let mut exec = SimExecutor::new(DeviceModel::noiseless(2), 16, 1)
    ///     .with_parallelism(Parallelism::Serial);
    /// let mut c = Circuit::new(2);
    /// c.h(0).cx(0, 1);
    /// let state = exec.prepare(&c);
    /// assert!((state.probabilities()[0b11] - 0.5).abs() < 1e-12);
    /// assert_eq!(exec.circuits_executed(), 0); // preparation is not metered
    /// ```
    pub fn prepare(&mut self, circuit: &Circuit) -> Statevector {
        let mut st = Statevector::zero(circuit.num_qubits());
        let plan = self.plans.plan(circuit);
        st.apply_plan_with(&plan, self.parallelism);
        st
    }

    /// Plan-cache statistics `(structures, hits, misses)` — how often
    /// simulations rebound a cached circuit structure instead of
    /// re-analyzing it.
    pub fn plan_cache_stats(&self) -> (usize, u64, u64) {
        (self.plans.len(), self.plans.hits(), self.plans.misses())
    }

    /// The device model.
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    /// Shots per circuit (meaningless in exact mode).
    pub fn shots(&self) -> u64 {
        self.shots
    }

    /// The number of circuits submitted so far.
    pub fn circuits_executed(&self) -> u64 {
        self.circuits_executed
    }

    /// Resets the circuit counter (e.g. between budgeted runs).
    pub fn reset_circuits_executed(&mut self) {
        self.circuits_executed = 0;
    }

    /// The calibrated (isolated, crosstalk-free) readout errors of the
    /// physical qubits that `k` measured logical qubits map onto.
    ///
    /// This is what a matrix-based mitigation calibration would know:
    /// it does *not* include the crosstalk amplification present when many
    /// qubits are measured simultaneously, so MBM built from it remains
    /// realistically imperfect.
    pub fn calibration(&self, k: usize) -> Vec<ReadoutError> {
        self.device
            .best_qubits(k)
            .into_iter()
            .map(|q| self.device.readout(q))
            .collect()
    }

    /// Runs a measurement of `basis` on an already-prepared state: appends
    /// the basis rotation, measures the basis support, applies the noise
    /// model, and returns the (logical-qubit-labelled) outcome PMF.
    ///
    /// Identity bases measure nothing and are rejected.
    ///
    /// # Panics
    ///
    /// Panics if the basis is all-identity, acts on more qubits than the
    /// state, or the device has fewer qubits than the measurement needs.
    pub fn run_prepared(&mut self, state: &Statevector, basis: &PauliString) -> Pmf {
        let measured = basis.support();
        assert!(
            !measured.is_empty(),
            "cannot execute a measurement of the identity basis"
        );
        let mut st = state.clone();
        let plan = self.plans.plan(&basis_rotation(basis));
        st.apply_plan_with(&plan, self.parallelism);
        self.finish(st.marginal_probabilities(&measured), measured)
    }

    /// Runs a measurement of `basis` on an already-prepared state,
    /// measuring **every** qubit of the state (identity positions in the
    /// computational basis) — how Qiskit-style VQE executes its circuits,
    /// and how JigSaw's Global runs produce their full-width Global-PMF
    /// (Fig.3). All qubits being read out simultaneously exposes the run to
    /// maximum measurement crosstalk; this is the cost the subset circuits
    /// avoid.
    ///
    /// # Panics
    ///
    /// Panics if the basis acts on more qubits than the state or the device
    /// is too small.
    pub fn run_prepared_all(&mut self, state: &Statevector, basis: &PauliString) -> Pmf {
        let mut st = state.clone();
        let plan = self.plans.plan(&basis_rotation(basis));
        st.apply_plan_with(&plan, self.parallelism);
        let measured: Vec<usize> = (0..state.num_qubits()).collect();
        self.finish(st.marginal_probabilities(&measured), measured)
    }

    /// Runs an explicit circuit from `|0…0⟩` and measures `measured` in the
    /// computational basis.
    ///
    /// # Panics
    ///
    /// Panics if `measured` is empty or out of range.
    pub fn run_circuit(&mut self, circuit: &Circuit, measured: &[usize]) -> Pmf {
        assert!(!measured.is_empty(), "no qubits to measure");
        let mut st = Statevector::zero(circuit.num_qubits());
        let plan = self.plans.plan(circuit);
        st.apply_plan_with(&plan, self.parallelism);
        self.finish(st.marginal_probabilities(measured), measured.to_vec())
    }

    fn finish(&mut self, mut probs: Vec<f64>, measured: Vec<usize>) -> Pmf {
        let m = measured.len();
        assert!(
            m <= self.device.num_qubits(),
            "measurement of {m} qubits exceeds the {}-qubit device",
            self.device.num_qubits()
        );
        self.circuits_executed += 1;

        if self.device.depolarizing() > 0.0 {
            apply_depolarizing(&mut probs, self.device.depolarizing());
        }
        // Map measured logical qubits onto the best physical qubits;
        // crosstalk scales with the number of simultaneous measurements.
        let physical = self.device.best_qubits(m);
        let errors: Vec<ReadoutError> = physical
            .iter()
            .map(|&q| self.device.effective_readout(q, m))
            .collect();
        apply_readout_errors(&mut probs, &errors);

        if self.exact {
            Pmf::new(measured, probs)
        } else {
            let counts = qsim::sample_counts(&probs, self.shots, &mut self.rng);
            Pmf::new(measured, counts.iter().map(|&c| c as f64).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    #[test]
    fn noiseless_exact_execution_reproduces_ideal_marginals() {
        let mut exec = SimExecutor::exact(DeviceModel::noiseless(3), 1);
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let mut st = Statevector::zero(3);
        st.apply_circuit(&c);
        let pmf = exec.run_prepared(&st, &ps("ZZZ"));
        assert!((pmf.prob(0b000) - 0.5).abs() < 1e-12);
        assert!((pmf.prob(0b111) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn readout_noise_shows_up_in_the_distribution() {
        let mut exec = SimExecutor::exact(DeviceModel::uniform(2, 0.1), 1);
        let st = Statevector::zero(2);
        let pmf = exec.run_prepared(&st, &ps("ZZ"));
        assert!((pmf.prob(0b00) - 0.81).abs() < 1e-12);
        assert!((pmf.prob(0b11) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn fewer_measured_qubits_means_less_crosstalk_error() {
        // With crosstalk, a 1-qubit measurement is cleaner than the same
        // qubit measured as part of a 4-qubit readout.
        let dev = DeviceModel::new(
            "ct",
            vec![ReadoutError::symmetric(0.04); 4],
            qnoise::CrosstalkModel::new(0.3),
            0.0,
        );
        let st = Statevector::zero(4);
        let mut exec = SimExecutor::exact(dev, 1);
        let single = exec.run_prepared(&st, &ps("ZIII"));
        let full = exec.run_prepared(&st, &ps("ZZZZ"));
        let p_err_single = single.prob(1);
        let p_err_full = full.marginal(&[0]).prob(1);
        assert!(
            p_err_full > p_err_single * 1.5,
            "full {p_err_full} vs single {p_err_single}"
        );
    }

    #[test]
    fn cost_counter_increments() {
        let mut exec = SimExecutor::new(DeviceModel::noiseless(2), 16, 3);
        let st = Statevector::zero(2);
        exec.run_prepared(&st, &ps("ZI"));
        exec.run_prepared(&st, &ps("IZ"));
        assert_eq!(exec.circuits_executed(), 2);
        exec.reset_circuits_executed();
        assert_eq!(exec.circuits_executed(), 0);
    }

    #[test]
    fn sampled_pmf_totals_one() {
        let mut exec = SimExecutor::new(DeviceModel::mumbai_like(), 256, 5);
        let mut st = Statevector::zero(2);
        let mut c = Circuit::new(2);
        c.h(0);
        st.apply_circuit(&c);
        let pmf = exec.run_prepared(&st, &ps("XZ"));
        assert!((pmf.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(pmf.qubits(), &[0, 1]);
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let run = |seed| {
            let mut exec = SimExecutor::new(DeviceModel::mumbai_like(), 128, seed);
            let mut st = Statevector::zero(2);
            let mut c = Circuit::new(2);
            c.h(0).cx(0, 1);
            st.apply_circuit(&c);
            exec.run_prepared(&st, &ps("ZZ")).probs().to_vec()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn parallelism_mode_never_changes_results() {
        // Statevector execution is bit-identical across modes, and the
        // sampling RNG stream is untouched by the choice, so whole PMFs
        // must match exactly.
        let run = |mode: Parallelism| {
            let mut exec =
                SimExecutor::new(DeviceModel::mumbai_like(), 256, 11).with_parallelism(mode);
            let mut c = Circuit::new(3);
            c.h(0).cx(0, 1).cx(1, 2).ry(2, 0.7);
            let mut st = Statevector::zero(3);
            st.apply_circuit(&c);
            exec.run_prepared(&st, &ps("ZXZ")).probs().to_vec()
        };
        let serial = run(Parallelism::Serial);
        assert_eq!(serial, run(Parallelism::Auto));
        assert_eq!(serial, run(Parallelism::Threads(4)));
    }

    #[test]
    fn run_circuit_measures_computational_basis() {
        let mut exec = SimExecutor::exact(DeviceModel::noiseless(2), 1);
        let mut c = Circuit::new(2);
        c.x(1);
        let pmf = exec.run_circuit(&c, &[1]);
        assert_eq!(pmf.prob(1), 1.0);
    }

    #[test]
    #[should_panic(expected = "identity basis")]
    fn identity_basis_rejected() {
        let mut exec = SimExecutor::exact(DeviceModel::noiseless(2), 1);
        exec.run_prepared(&Statevector::zero(2), &ps("II"));
    }

    #[test]
    fn calibration_is_isolated_readout() {
        let dev = DeviceModel::new(
            "cal",
            vec![ReadoutError::symmetric(0.05); 3],
            qnoise::CrosstalkModel::new(0.5),
            0.0,
        );
        let exec = SimExecutor::exact(dev, 1);
        let cal = exec.calibration(3);
        // Calibration reports base rates, not crosstalk-amplified ones.
        assert!(cal.iter().all(|e| (e.average() - 0.05).abs() < 1e-12));
    }
}
