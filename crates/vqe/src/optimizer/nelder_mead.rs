//! Nelder–Mead simplex optimizer.
//!
//! A gradient-free simplex method, included as the third tuner option:
//! VQA papers (including VarSaw's ImFil reference, Lavrijsen et al.) use
//! it as a standard comparison point. One iteration performs a single
//! simplex transformation (reflect / expand / contract / shrink), costing
//! between 1 and `dim + 2` objective evaluations.

use super::{Optimizer, StepResult};

/// Nelder–Mead with the standard coefficients (reflect 1, expand 2,
/// contract ½, shrink ½). The simplex is built lazily around the first
/// `step` call's parameter vector.
///
/// # Examples
///
/// ```
/// use vqe::{NelderMead, Optimizer};
///
/// let mut nm = NelderMead::new(0.5);
/// let mut x = vec![2.0, -1.0];
/// let mut f = |p: &[f64]| p.iter().map(|v| v * v).sum::<f64>();
/// for _ in 0..150 {
///     nm.step(&mut x, &mut f);
/// }
/// assert!(f(&x) < 0.05);
/// ```
#[derive(Clone, Debug)]
pub struct NelderMead {
    initial_spread: f64,
    simplex: Vec<(Vec<f64>, f64)>,
}

impl NelderMead {
    /// Creates a tuner whose initial simplex offsets each coordinate by
    /// `initial_spread`.
    ///
    /// # Panics
    ///
    /// Panics if `initial_spread <= 0`.
    pub fn new(initial_spread: f64) -> Self {
        assert!(initial_spread > 0.0, "simplex spread must be positive");
        NelderMead {
            initial_spread,
            simplex: Vec::new(),
        }
    }

    fn ensure_simplex(
        &mut self,
        params: &[f64],
        objective: &mut dyn FnMut(&[f64]) -> f64,
    ) -> usize {
        if !self.simplex.is_empty() {
            return 0;
        }
        let mut evals = 0;
        let push = |s: &mut Vec<(Vec<f64>, f64)>,
                    x: Vec<f64>,
                    f: &mut dyn FnMut(&[f64]) -> f64,
                    e: &mut usize| {
            let y = f(&x);
            *e += 1;
            s.push((x, y));
        };
        push(&mut self.simplex, params.to_vec(), objective, &mut evals);
        for i in 0..params.len() {
            let mut v = params.to_vec();
            v[i] += self.initial_spread;
            push(&mut self.simplex, v, objective, &mut evals);
        }
        evals
    }

    fn sort(&mut self) {
        self.simplex
            .sort_by(|a, b| a.1.partial_cmp(&b.1).expect("objective is not NaN"));
    }
}

impl Optimizer for NelderMead {
    fn step(&mut self, params: &mut [f64], objective: &mut dyn FnMut(&[f64]) -> f64) -> StepResult {
        let dim = params.len();
        let mut evals = self.ensure_simplex(params, objective);
        self.sort();

        // Centroid of all but the worst vertex.
        let worst = self.simplex.len() - 1;
        let mut centroid = vec![0.0; dim];
        for (v, _) in &self.simplex[..worst] {
            for (c, x) in centroid.iter_mut().zip(v) {
                *c += x / worst as f64;
            }
        }
        let at = |alpha: f64, c: &[f64], w: &[f64]| -> Vec<f64> {
            c.iter()
                .zip(w)
                .map(|(ci, wi)| ci + alpha * (ci - wi))
                .collect()
        };
        let (w_point, w_val) = self.simplex[worst].clone();
        let best_val = self.simplex[0].1;
        let second_worst_val = self.simplex[worst - 1].1;

        let reflected = at(1.0, &centroid, &w_point);
        let f_r = objective(&reflected);
        evals += 1;
        let mut sum = f_r;

        if f_r < best_val {
            // Try expanding.
            let expanded = at(2.0, &centroid, &w_point);
            let f_e = objective(&expanded);
            evals += 1;
            sum += f_e;
            self.simplex[worst] = if f_e < f_r {
                (expanded, f_e)
            } else {
                (reflected, f_r)
            };
        } else if f_r < second_worst_val {
            self.simplex[worst] = (reflected, f_r);
        } else {
            // Contract toward the centroid.
            let contracted = at(-0.5, &centroid, &w_point);
            let f_c = objective(&contracted);
            evals += 1;
            sum += f_c;
            if f_c < w_val {
                self.simplex[worst] = (contracted, f_c);
            } else {
                // Shrink everything toward the best vertex.
                let best_point = self.simplex[0].0.clone();
                for entry in self.simplex.iter_mut().skip(1) {
                    let shrunk: Vec<f64> = entry
                        .0
                        .iter()
                        .zip(&best_point)
                        .map(|(x, b)| b + 0.5 * (x - b))
                        .collect();
                    let f_s = objective(&shrunk);
                    evals += 1;
                    sum += f_s;
                    *entry = (shrunk, f_s);
                }
            }
        }

        self.sort();
        params.copy_from_slice(&self.simplex[0].0);
        StepResult {
            evals,
            mean_objective: sum / (evals.max(1)) as f64,
        }
    }

    fn name(&self) -> &str {
        "nelder-mead"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_quadratic() {
        let mut nm = NelderMead::new(0.5);
        let mut x = vec![3.0, -2.0, 1.0];
        let mut f = |p: &[f64]| p.iter().map(|v| v * v).sum::<f64>();
        for _ in 0..300 {
            nm.step(&mut x, &mut f);
        }
        assert!(f(&x) < 0.01, "residual {}", f(&x));
    }

    #[test]
    fn converges_on_rosenbrock() {
        let mut nm = NelderMead::new(0.3);
        let mut x = vec![-1.0, 1.0];
        let mut f = |p: &[f64]| {
            let (a, b) = (p[0], p[1]);
            (1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2)
        };
        for _ in 0..600 {
            nm.step(&mut x, &mut f);
        }
        assert!(f(&x) < 0.5, "residual {}", f(&x));
    }

    #[test]
    fn first_step_builds_the_simplex() {
        let mut nm = NelderMead::new(0.1);
        let mut calls = 0usize;
        let mut x = vec![0.0, 0.0];
        let r = nm.step(&mut x, &mut |p| {
            calls += 1;
            p.iter().sum::<f64>()
        });
        // dim+1 simplex evaluations plus at least the reflection.
        assert!(r.evals >= 3 + 1);
        assert_eq!(r.evals, calls);
    }

    #[test]
    fn later_steps_are_cheap() {
        let mut nm = NelderMead::new(0.1);
        let mut x = vec![1.0, 1.0];
        let mut f = |p: &[f64]| p.iter().map(|v| v * v).sum::<f64>();
        nm.step(&mut x, &mut f);
        let r = nm.step(&mut x, &mut f);
        assert!(r.evals <= 2 + 2, "step cost {}", r.evals);
    }

    #[test]
    fn params_track_the_best_vertex() {
        let mut nm = NelderMead::new(0.2);
        let mut x = vec![1.0];
        let mut f = |p: &[f64]| (p[0] - 0.5).powi(2);
        let mut last = f(&x);
        for _ in 0..50 {
            nm.step(&mut x, &mut f);
            let now = f(&x);
            assert!(now <= last + 1e-12, "objective increased");
            last = now;
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_spread() {
        NelderMead::new(0.0);
    }
}
