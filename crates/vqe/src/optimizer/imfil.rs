//! Implicit-filtering optimizer.
//!
//! The paper's second tuner (ImFil, Section 5.1) is a stencil-based
//! derivative-free method designed for noisy objectives: it estimates a
//! gradient from central differences on a coordinate stencil of scale `h`,
//! takes a projected step, and shrinks the stencil when the step fails to
//! improve — the shrinking filters the observation noise.

use super::{Optimizer, StepResult};

/// A simplified ImFil: central-difference stencil gradient, normalized
/// descent step of length `h`, stencil halving on failure.
///
/// One iteration costs `2·dim + 1` objective evaluations, much more than
/// SPSA's 2 — matching the real tuners' cost profiles.
///
/// # Examples
///
/// ```
/// use vqe::{ImFil, Optimizer};
///
/// let mut opt = ImFil::new(0.5);
/// let mut x = vec![1.0, -1.5];
/// let mut f = |p: &[f64]| p.iter().map(|v| v * v).sum::<f64>();
/// for _ in 0..60 {
///     opt.step(&mut x, &mut f);
/// }
/// assert!(f(&x) < 0.05);
/// ```
#[derive(Clone, Debug)]
pub struct ImFil {
    h: f64,
    min_h: f64,
    shrink: f64,
}

impl ImFil {
    /// Creates an ImFil tuner with initial stencil scale `h0`.
    ///
    /// # Panics
    ///
    /// Panics if `h0 <= 0`.
    pub fn new(h0: f64) -> Self {
        assert!(h0 > 0.0, "stencil scale must be positive");
        ImFil {
            h: h0,
            min_h: 1e-4,
            shrink: 0.5,
        }
    }

    /// The current stencil scale.
    pub fn stencil(&self) -> f64 {
        self.h
    }
}

impl Optimizer for ImFil {
    fn step(&mut self, params: &mut [f64], objective: &mut dyn FnMut(&[f64]) -> f64) -> StepResult {
        let n = params.len();
        let f0 = objective(params);
        let mut evals = 1;
        let mut grad = vec![0.0; n];
        let mut sum = f0;
        for i in 0..n {
            let mut plus = params.to_vec();
            plus[i] += self.h;
            let mut minus = params.to_vec();
            minus[i] -= self.h;
            let fp = objective(&plus);
            let fm = objective(&minus);
            evals += 2;
            sum += fp + fm;
            grad[i] = (fp - fm) / (2.0 * self.h);
        }
        let gnorm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
        if gnorm > 1e-12 {
            let candidate: Vec<f64> = params
                .iter()
                .zip(&grad)
                .map(|(x, g)| x - self.h * g / gnorm)
                .collect();
            let fc = objective(&candidate);
            evals += 1;
            if fc < f0 {
                params.copy_from_slice(&candidate);
            } else {
                self.h = (self.h * self.shrink).max(self.min_h);
            }
        } else {
            self.h = (self.h * self.shrink).max(self.min_h);
        }
        StepResult {
            evals,
            mean_objective: sum / (2 * n + 1) as f64,
        }
    }

    fn name(&self) -> &str {
        "imfil"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_quadratic() {
        let mut opt = ImFil::new(0.5);
        let mut x = vec![2.0, -3.0];
        let mut f = |p: &[f64]| p.iter().map(|v| v * v).sum::<f64>();
        for _ in 0..100 {
            opt.step(&mut x, &mut f);
        }
        assert!(f(&x) < 0.02, "residual {}", f(&x));
    }

    #[test]
    fn stencil_shrinks_when_stuck() {
        let mut opt = ImFil::new(1.0);
        let mut x = vec![0.0];
        let mut f = |p: &[f64]| p[0] * p[0];
        let h0 = opt.stencil();
        for _ in 0..5 {
            opt.step(&mut x, &mut f);
        }
        assert!(opt.stencil() < h0);
    }

    #[test]
    fn reports_eval_count() {
        let mut opt = ImFil::new(0.3);
        let mut calls = 0usize;
        let mut x = vec![1.0, 1.0, 1.0];
        let r = opt.step(&mut x, &mut |p| {
            calls += 1;
            p.iter().sum::<f64>()
        });
        assert_eq!(r.evals, calls);
        assert!(r.evals >= 2 * 3 + 1);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_nonpositive_stencil() {
        ImFil::new(0.0);
    }
}
