//! Simultaneous Perturbation Stochastic Approximation.
//!
//! The paper's primary tuner (Spall's SPSA, Section 5.1): each iteration
//! estimates the gradient from exactly two objective evaluations at
//! symmetric random perturbations — the right cost profile when every
//! evaluation is a batch of quantum circuits.

use super::{BatchObjective, Optimizer, StepResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SPSA with the standard gain schedules `aₖ = a/(A+k+1)^α` and
/// `cₖ = c/(k+1)^γ`, plus an optional first-step calibration of `a` that
/// targets an initial update magnitude — which makes the tuner robust to
/// the widely varying coefficient norms of molecular Hamiltonians.
///
/// # Examples
///
/// Minimize a noisy quadratic:
///
/// ```
/// use vqe::{Optimizer, Spsa};
///
/// let mut spsa = Spsa::new(42);
/// let mut params = vec![1.5, -2.0];
/// let mut objective = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
/// for _ in 0..200 {
///     spsa.step(&mut params, &mut objective);
/// }
/// assert!(params.iter().all(|v| v.abs() < 0.3));
/// ```
#[derive(Clone, Debug)]
pub struct Spsa {
    a: f64,
    c: f64,
    alpha: f64,
    gamma: f64,
    stability: f64,
    target_first_step: Option<f64>,
    k: usize,
    rng: StdRng,
}

impl Spsa {
    /// SPSA with standard coefficients (`α = 0.602`, `γ = 0.101`,
    /// `c = 0.2`, `A = 20`) and first-step calibration targeting an initial
    /// parameter update of 0.15 rad.
    pub fn new(seed: u64) -> Self {
        Spsa {
            a: 0.2,
            c: 0.2,
            alpha: 0.602,
            gamma: 0.101,
            stability: 20.0,
            target_first_step: Some(0.15),
            k: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Sets the base step gain `a` and disables calibration.
    pub fn with_a(mut self, a: f64) -> Self {
        self.a = a;
        self.target_first_step = None;
        self
    }

    /// Sets the perturbation size `c`.
    pub fn with_c(mut self, c: f64) -> Self {
        self.c = c;
        self
    }

    /// Sets the calibration target for the first update magnitude
    /// (radians), or disables calibration with `None`.
    pub fn with_calibration(mut self, target: Option<f64>) -> Self {
        self.target_first_step = target;
        self
    }

    /// The number of completed iterations.
    pub fn iterations(&self) -> usize {
        self.k
    }

    /// One SPSA iteration with the ± pair evaluated by `eval_pair` —
    /// the single body behind both [`Optimizer::step`] (two sequential
    /// objective calls) and [`Optimizer::step_batch`] (one batched
    /// dispatch). The perturbation stream is drawn before either
    /// evaluation, so both entry points consume identical randomness.
    fn gradient_step(
        &mut self,
        params: &mut [f64],
        eval_pair: &mut dyn FnMut(&[f64], &[f64]) -> (f64, f64),
    ) -> StepResult {
        let k = self.k as f64;
        let ck = self.c / (k + 1.0).powf(self.gamma);
        let delta: Vec<f64> = (0..params.len())
            .map(|_| if self.rng.random::<bool>() { 1.0 } else { -1.0 })
            .collect();

        let mut plus = params.to_vec();
        let mut minus = params.to_vec();
        for i in 0..params.len() {
            plus[i] += ck * delta[i];
            minus[i] -= ck * delta[i];
        }
        let (y_plus, y_minus) = eval_pair(&plus, &minus);
        let diff = y_plus - y_minus;

        // Gradient estimate gᵢ = diff / (2·ck·δᵢ).
        let grad_scale = diff / (2.0 * ck);

        if let Some(target) = self.target_first_step.take() {
            // Calibrate `a` so the first update magnitude is ≈ target.
            let gmag = grad_scale.abs().max(1e-9);
            self.a = target * (self.stability + 1.0).powf(self.alpha) / gmag;
        }
        let ak = self.a / (self.stability + k + 1.0).powf(self.alpha);
        for i in 0..params.len() {
            params[i] -= ak * grad_scale / delta[i];
        }
        self.k += 1;
        StepResult {
            evals: 2,
            mean_objective: 0.5 * (y_plus + y_minus),
        }
    }
}

impl Optimizer for Spsa {
    fn step(&mut self, params: &mut [f64], objective: &mut dyn FnMut(&[f64]) -> f64) -> StepResult {
        self.gradient_step(params, &mut |plus, minus| {
            (objective(plus), objective(minus))
        })
    }

    /// SPSA's two probes are symmetric perturbations of one parameter
    /// vector — the canonical batch: one `evaluate_batch` dispatch
    /// evaluates both against one compiled circuit plan. Bit-identical
    /// to [`Optimizer::step`] whenever the objective honors the
    /// [`BatchObjective`] equivalence contract.
    fn step_batch(&mut self, params: &mut [f64], objective: &mut dyn BatchObjective) -> StepResult {
        self.gradient_step(params, &mut |plus, minus| {
            let ys = objective.evaluate_batch(&[plus, minus]);
            assert_eq!(
                ys.len(),
                2,
                "batch objective must return one value per probe"
            );
            (ys[0], ys[1])
        })
    }

    fn name(&self) -> &str {
        "spsa"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_smooth_quadratic() {
        let mut spsa = Spsa::new(1);
        let mut x = vec![2.0, -1.0, 0.5];
        let mut f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        for _ in 0..300 {
            spsa.step(&mut x, &mut f);
        }
        assert!(f(&x) < 0.05, "residual {}", f(&x));
    }

    #[test]
    fn converges_under_observation_noise() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut noise = StdRng::seed_from_u64(7);
        let mut spsa = Spsa::new(2);
        let mut x = vec![1.0, 1.0];
        let mut f =
            |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>() + (noise.random::<f64>() - 0.5) * 0.05;
        for _ in 0..400 {
            spsa.step(&mut x, &mut f);
        }
        assert!(x.iter().map(|v| v * v).sum::<f64>() < 0.1);
    }

    #[test]
    fn step_reports_two_evals() {
        let mut spsa = Spsa::new(3);
        let mut calls = 0usize;
        let mut x = vec![0.3];
        let r = spsa.step(&mut x, &mut |p| {
            calls += 1;
            p[0] * p[0]
        });
        assert_eq!(r.evals, 2);
        assert_eq!(calls, 2);
    }

    #[test]
    fn calibration_scales_to_objective_magnitude() {
        // A steep objective (×1000) should not produce wild first steps.
        let mut spsa = Spsa::new(4);
        let mut x = vec![1.0, -1.0];
        let before = x.clone();
        spsa.step(&mut x, &mut |p| {
            1000.0 * p.iter().map(|v| v * v).sum::<f64>()
        });
        let step_norm: f64 = x
            .iter()
            .zip(&before)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(step_norm < 1.0, "first step too large: {step_norm}");
    }

    #[test]
    fn step_batch_matches_step_exactly() {
        // A counting objective that honors the BatchObjective contract.
        struct Quadratic {
            batches: usize,
        }
        impl BatchObjective for Quadratic {
            fn evaluate(&mut self, p: &[f64]) -> f64 {
                p.iter().map(|v| v * v).sum::<f64>()
            }
            fn evaluate_batch(&mut self, sets: &[&[f64]]) -> Vec<f64> {
                self.batches += 1;
                sets.iter().map(|p| self.evaluate(p)).collect()
            }
        }
        let mut a = Spsa::new(6);
        let mut b = Spsa::new(6);
        let mut xa = vec![1.0, -0.5, 2.0];
        let mut xb = xa.clone();
        let mut quad = Quadratic { batches: 0 };
        for _ in 0..20 {
            let ra = a.step(&mut xa, &mut |p: &[f64]| {
                p.iter().map(|v| v * v).sum::<f64>()
            });
            let rb = b.step_batch(&mut xb, &mut quad);
            assert_eq!(ra, rb);
        }
        assert_eq!(xa, xb, "parameter trajectories must be bit-identical");
        assert_eq!(quad.batches, 20, "each iteration is one batch dispatch");
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut spsa = Spsa::new(seed);
            let mut x = vec![1.0, 2.0];
            for _ in 0..10 {
                spsa.step(&mut x, &mut |p| p.iter().map(|v| v * v).sum::<f64>());
            }
            x
        };
        assert_eq!(run(11), run(11));
    }
}
