//! Classical optimizers (the paper's "tuners", Section 5.1).

mod imfil;
mod nelder_mead;
mod spsa;

pub use imfil::ImFil;
pub use nelder_mead::NelderMead;
pub use spsa::Spsa;

/// The outcome of one optimizer iteration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StepResult {
    /// Number of objective evaluations the step consumed.
    pub evals: usize,
    /// The mean of the objective values observed during the step — the
    /// "measured energy" recorded in the VQE traces (no extra evaluation is
    /// spent on trace recording).
    pub mean_objective: f64,
}

/// An objective that can evaluate several probe points in one dispatch.
///
/// The batched entry point exists for objectives backed by a quantum
/// executor: probe points of one optimizer iteration (SPSA's symmetric ±
/// pair, a restart population) share circuit structure, so evaluating
/// them as one batch hits one compiled plan and amortizes per-call
/// planning (see `SimExecutor::run_batch`). Implementations **must**
/// make `evaluate_batch` exactly equivalent to sequential `evaluate`
/// calls in order — same values, same internal RNG advancement — so
/// optimizers can batch blindly.
pub trait BatchObjective {
    /// Measures the objective at one parameter vector.
    fn evaluate(&mut self, params: &[f64]) -> f64;

    /// Measures the objective at several parameter vectors, in order.
    /// The default simply loops; batch-capable objectives override it.
    fn evaluate_batch(&mut self, param_sets: &[&[f64]]) -> Vec<f64> {
        param_sets.iter().map(|p| self.evaluate(p)).collect()
    }
}

/// A derivative-free stochastic optimizer driving the VQA parameter loop.
///
/// Implementations mutate `params` in place using only calls to
/// `objective`. They must tolerate noisy objectives — every evaluation is a
/// finite-shot, noisy quantum execution.
pub trait Optimizer {
    /// Performs one tuning iteration.
    fn step(&mut self, params: &mut [f64], objective: &mut dyn FnMut(&[f64]) -> f64) -> StepResult;

    /// Performs one tuning iteration against a batch-capable objective:
    /// optimizers that probe several points per iteration dispatch them
    /// as one [`BatchObjective::evaluate_batch`] call (SPSA overrides
    /// this with its ± pair). The default adapts [`Optimizer::step`], so
    /// existing optimizers keep their exact behavior.
    fn step_batch(&mut self, params: &mut [f64], objective: &mut dyn BatchObjective) -> StepResult {
        self.step(params, &mut |p| objective.evaluate(p))
    }

    /// A short human-readable name ("spsa", "imfil").
    fn name(&self) -> &str;
}
