//! Classical optimizers (the paper's "tuners", Section 5.1).

mod imfil;
mod nelder_mead;
mod spsa;

pub use imfil::ImFil;
pub use nelder_mead::NelderMead;
pub use spsa::Spsa;

/// The outcome of one optimizer iteration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StepResult {
    /// Number of objective evaluations the step consumed.
    pub evals: usize,
    /// The mean of the objective values observed during the step — the
    /// "measured energy" recorded in the VQE traces (no extra evaluation is
    /// spent on trace recording).
    pub mean_objective: f64,
}

/// A derivative-free stochastic optimizer driving the VQA parameter loop.
///
/// Implementations mutate `params` in place using only calls to
/// `objective`. They must tolerate noisy objectives — every evaluation is a
/// finite-shot, noisy quantum execution.
pub trait Optimizer {
    /// Performs one tuning iteration.
    fn step(&mut self, params: &mut [f64], objective: &mut dyn FnMut(&[f64]) -> f64) -> StepResult;

    /// A short human-readable name ("spsa", "imfil").
    fn name(&self) -> &str;
}
