//! Hardware-efficient ansatz construction.

use qsim::Circuit;
use std::fmt;

/// The entangling topology of the hardware-efficient ansatz.
///
/// The paper's main evaluation uses `Full` entanglement (Section 5.1) and
/// Section 6.6 sweeps the other types (Table 3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Entanglement {
    /// CX between every qubit pair `(i, j)`, `i < j`.
    #[default]
    Full,
    /// CX along the line: `(i, i+1)`.
    Linear,
    /// Linear plus the closing `(n−1, 0)` coupler.
    Circular,
    /// A star rooted at qubit 0: `(0, j)` for every other qubit. (The paper
    /// names an "Asymmetric" ansatz without defining it; a star is the
    /// natural asymmetric counterpart of the symmetric topologies.)
    Asymmetric,
}

impl Entanglement {
    /// The CX (control, target) pairs for `n` qubits.
    pub fn pairs(&self, n: usize) -> Vec<(usize, usize)> {
        match self {
            Entanglement::Full => {
                let mut v = Vec::new();
                for i in 0..n {
                    for j in (i + 1)..n {
                        v.push((i, j));
                    }
                }
                v
            }
            Entanglement::Linear => (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect(),
            Entanglement::Circular => {
                let mut v: Vec<_> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
                if n > 2 {
                    v.push((n - 1, 0));
                }
                v
            }
            Entanglement::Asymmetric => (1..n).map(|j| (0, j)).collect(),
        }
    }
}

impl fmt::Display for Entanglement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Entanglement::Full => "full",
            Entanglement::Linear => "linear",
            Entanglement::Circular => "circular",
            Entanglement::Asymmetric => "asymmetric",
        };
        write!(f, "{s}")
    }
}

/// The hardware-efficient SU2 ansatz (Qiskit's `EfficientSU2`): alternating
/// layers of per-qubit RY·RZ rotations and CX entanglers, closed by a final
/// rotation layer. `reps` is the paper's ansatz depth `p` (2 in the main
/// evaluation, swept in Table 4).
///
/// # Examples
///
/// ```
/// use vqe::{EfficientSu2, Entanglement};
///
/// let ansatz = EfficientSu2::new(4, 2, Entanglement::Full);
/// assert_eq!(ansatz.num_parameters(), 2 * 4 * 3);
/// let c = ansatz.circuit(&vec![0.1; ansatz.num_parameters()]);
/// assert_eq!(c.num_qubits(), 4);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct EfficientSu2 {
    num_qubits: usize,
    reps: usize,
    entanglement: Entanglement,
}

impl EfficientSu2 {
    /// Creates an ansatz over `num_qubits` with `reps` entangling blocks.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits == 0`.
    pub fn new(num_qubits: usize, reps: usize, entanglement: Entanglement) -> Self {
        assert!(num_qubits > 0, "ansatz needs at least one qubit");
        EfficientSu2 {
            num_qubits,
            reps,
            entanglement,
        }
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The number of entangling repetitions (the paper's `p`).
    pub fn reps(&self) -> usize {
        self.reps
    }

    /// The entangling topology.
    pub fn entanglement(&self) -> Entanglement {
        self.entanglement
    }

    /// The number of free parameters: `2·n·(reps + 1)` (an RY and an RZ per
    /// qubit per rotation layer).
    pub fn num_parameters(&self) -> usize {
        2 * self.num_qubits * (self.reps + 1)
    }

    /// Builds the concrete circuit for a parameter assignment.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != num_parameters()`.
    pub fn circuit(&self, params: &[f64]) -> Circuit {
        assert_eq!(
            params.len(),
            self.num_parameters(),
            "expected {} parameters, got {}",
            self.num_parameters(),
            params.len()
        );
        let n = self.num_qubits;
        let mut c = Circuit::new(n);
        let mut p = params.iter().copied();
        let rotation_layer = |c: &mut Circuit, p: &mut dyn Iterator<Item = f64>| {
            for q in 0..n {
                c.ry(q, p.next().expect("parameter count checked"));
            }
            for q in 0..n {
                c.rz(q, p.next().expect("parameter count checked"));
            }
        };
        for _ in 0..self.reps {
            rotation_layer(&mut c, &mut p);
            for (a, b) in self.entanglement.pairs(n) {
                c.cx(a, b);
            }
        }
        rotation_layer(&mut c, &mut p);
        c
    }

    /// A deterministic random initial parameter vector in `(−π/4, π/4)` —
    /// a perturbed reference-state start (like Qiskit's near-zero default),
    /// which keeps independent runs in comparable optimization basins.
    pub fn initial_parameters(&self, seed: u64) -> Vec<f64> {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        (0..self.num_parameters())
            .map(|_| (rng.random::<f64>() - 0.5) * 0.5 * std::f64::consts::PI)
            .collect()
    }
}

impl fmt::Display for EfficientSu2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EfficientSU2({} qubits, p={}, {})",
            self.num_qubits, self.reps, self.entanglement
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::Statevector;

    #[test]
    fn parameter_count_follows_formula() {
        for (n, p) in [(2, 1), (4, 2), (6, 4), (8, 8)] {
            let a = EfficientSu2::new(n, p, Entanglement::Full);
            assert_eq!(a.num_parameters(), 2 * n * (p + 1));
        }
    }

    #[test]
    fn entanglement_pair_counts() {
        assert_eq!(Entanglement::Full.pairs(5).len(), 10);
        assert_eq!(Entanglement::Linear.pairs(5).len(), 4);
        assert_eq!(Entanglement::Circular.pairs(5).len(), 5);
        assert_eq!(Entanglement::Asymmetric.pairs(5).len(), 4);
    }

    #[test]
    fn circular_on_two_qubits_does_not_duplicate() {
        assert_eq!(Entanglement::Circular.pairs(2), vec![(0, 1)]);
    }

    #[test]
    fn circuit_gate_count() {
        let a = EfficientSu2::new(3, 2, Entanglement::Linear);
        let c = a.circuit(&vec![0.0; a.num_parameters()]);
        // 3 rotation layers of 6 gates + 2 entangling layers of 2 CX.
        assert_eq!(c.gate_count(), 18 + 4);
        assert_eq!(c.two_qubit_gate_count(), 4);
    }

    #[test]
    fn zero_parameters_prepare_zero_state() {
        // RY(0) and RZ(0) are identity (up to global phase), CX on |00..0⟩
        // is identity.
        let a = EfficientSu2::new(3, 2, Entanglement::Full);
        let c = a.circuit(&vec![0.0; a.num_parameters()]);
        let mut s = Statevector::zero(3);
        s.apply_circuit(&c);
        assert!((s.probabilities()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parameters_change_the_state() {
        let a = EfficientSu2::new(2, 1, Entanglement::Full);
        let mut s1 = Statevector::zero(2);
        s1.apply_circuit(&a.circuit(&vec![0.3; a.num_parameters()]));
        let mut s2 = Statevector::zero(2);
        s2.apply_circuit(&a.circuit(&vec![0.7; a.num_parameters()]));
        assert!(s1.fidelity(&s2) < 1.0 - 1e-6);
    }

    #[test]
    fn initial_parameters_are_seeded() {
        let a = EfficientSu2::new(4, 2, Entanglement::Full);
        assert_eq!(a.initial_parameters(5), a.initial_parameters(5));
        assert_ne!(a.initial_parameters(5), a.initial_parameters(6));
        assert!(a
            .initial_parameters(5)
            .iter()
            .all(|t| t.abs() < std::f64::consts::PI));
    }

    #[test]
    #[should_panic(expected = "expected 12 parameters")]
    fn wrong_parameter_count_panics() {
        EfficientSu2::new(2, 2, Entanglement::Full).circuit(&[0.0; 3]);
    }
}
