//! Measurement-basis changes.

use pauli::{Pauli, PauliString};
use qsim::Circuit;

/// The basis-rotation circuit that maps a Pauli measurement basis onto
/// computational-basis (Z) measurements: `H` for X positions, `S†·H` for Y
/// positions, nothing for Z or identity (Fig.5 of the paper: "different
/// bases correspond to adding appropriate gates at the end of the ansatz").
///
/// # Examples
///
/// ```
/// use vqe::basis_rotation;
/// use pauli::PauliString;
///
/// let basis: PauliString = "XZY".parse().unwrap();
/// let rot = basis_rotation(&basis);
/// assert_eq!(rot.gate_count(), 3); // H on q0, Sdg+H on q2
/// ```
pub fn basis_rotation(basis: &PauliString) -> Circuit {
    let mut c = Circuit::new(basis.num_qubits());
    for (q, p) in basis.paulis().iter().enumerate() {
        match p {
            Pauli::I | Pauli::Z => {}
            Pauli::X => {
                c.h(q);
            }
            Pauli::Y => {
                c.sdg(q).h(q);
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use pauli::expectation_from_probs;
    use qsim::Statevector;

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    /// Measuring in a rotated basis must reproduce the exact Pauli
    /// expectation computed directly on the statevector.
    fn check_basis_measurement(state_prep: &Circuit, basis: &str) {
        let basis = ps(basis);
        let mut st = Statevector::zero(state_prep.num_qubits());
        st.apply_circuit(state_prep);
        let exact = basis.expectation(&st);

        st.apply_circuit(&basis_rotation(&basis));
        let measured = basis.support();
        let probs = st.marginal_probabilities(&measured);
        let via_counts = expectation_from_probs(&basis, &probs, &measured);
        assert!(
            (exact - via_counts).abs() < 1e-10,
            "basis {basis}: exact {exact} vs measured {via_counts}"
        );
    }

    #[test]
    fn x_basis_measurement_matches_exact() {
        let mut c = Circuit::new(1);
        c.ry(0, 0.7);
        check_basis_measurement(&c, "X");
    }

    #[test]
    fn y_basis_measurement_matches_exact() {
        let mut c = Circuit::new(1);
        c.ry(0, 0.7).rz(0, 0.4);
        check_basis_measurement(&c, "Y");
    }

    #[test]
    fn multi_qubit_mixed_basis() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).rz(2, 0.9).ry(0, 0.3);
        for basis in ["XZY", "ZZZ", "XXX", "YIZ", "IYX"] {
            check_basis_measurement(&c, basis);
        }
    }

    #[test]
    fn z_and_identity_need_no_gates() {
        assert_eq!(basis_rotation(&ps("ZIZ")).gate_count(), 0);
    }
}
