//! The VQA substrate of the VarSaw reproduction.
//!
//! Stands in for the Qiskit VQE framework plus the SPSA/ImFil tuners the
//! paper drives it with (Sections 2.4, 5.1–5.2). Provides:
//!
//! - [`EfficientSu2`] / [`Entanglement`]: the hardware-efficient ansatz
//!   (full/linear/circular/asymmetric entanglement, depth `p`),
//! - [`basis_rotation`]: measurement-basis changes (Fig.5),
//! - [`SimExecutor`]: noisy execution with best-qubit mapping, measurement
//!   crosstalk, circuit-cost metering, statevector [`Parallelism`] and
//!   [`Sharding`] knobs, and batched dispatch
//!   ([`SimExecutor::prepare_batch`] / [`SimExecutor::run_batch`]) that
//!   evaluates whole parameter-set and measurement families against one
//!   cached circuit plan,
//! - [`GroupedHamiltonian`]: the baseline's commutation-grouped
//!   measurement circuits and energy estimation,
//! - [`Spsa`] / [`ImFil`]: the classical optimizers,
//! - [`run_vqe`] / [`BaselineEvaluator`]: the tuning loop and the
//!   unmitigated baseline of the paper's comparisons.
//!
//! # Example
//!
//! A noiseless 2-qubit VQE run:
//!
//! ```
//! use pauli::Hamiltonian;
//! use qnoise::DeviceModel;
//! use vqe::*;
//!
//! let h = Hamiltonian::from_pairs(2, &[(-1.0, "ZZ"), (-0.5, "XI"), (-0.5, "IX")]);
//! let ansatz = EfficientSu2::new(2, 2, Entanglement::Full);
//! let exec = SimExecutor::new(DeviceModel::noiseless(2), 1024, 7);
//! let init = ansatz.initial_parameters(1);
//! let mut eval = BaselineEvaluator::new(&h, ansatz, exec);
//! let mut tuner = Spsa::new(3);
//! let trace = run_vqe(&mut eval, &mut tuner, init, &VqeConfig::default());
//! assert!(trace.best_energy() < -1.0);
//! ```

mod ansatz;
mod basis;
mod energy;
mod executor;
mod optimizer;
mod runner;

pub use ansatz::{EfficientSu2, Entanglement};
pub use basis::basis_rotation;
pub use energy::GroupedHamiltonian;
pub use executor::{BatchJob, PrepareError, SimExecutor};
pub use optimizer::{BatchObjective, ImFil, NelderMead, Optimizer, Spsa, StepResult};
pub use qsim::{Parallelism, Sharding, TransportError, TransportMode};
pub use runner::{run_vqe, BaselineEvaluator, EnergyEvaluator, VqeConfig, VqeTrace};
