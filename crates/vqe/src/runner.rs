//! The VQE tuning loop.

use crate::energy::GroupedHamiltonian;
use crate::executor::{BatchJob, SimExecutor};
use crate::optimizer::{BatchObjective, Optimizer};
use mitigation::{mbm_correct, Pmf};
use pauli::Hamiltonian;
use qsim::{Circuit, Statevector};

use crate::ansatz::EfficientSu2;

/// Stop conditions and bookkeeping for a VQE run.
#[derive(Clone, Debug, PartialEq)]
pub struct VqeConfig {
    /// Maximum tuner iterations.
    pub max_iterations: usize,
    /// Maximum circuits submitted to the executor (the paper's fixed
    /// circuit budget), if any. Checked between iterations.
    pub max_circuits: Option<u64>,
}

impl Default for VqeConfig {
    fn default() -> Self {
        VqeConfig {
            max_iterations: 300,
            max_circuits: None,
        }
    }
}

/// The record of a VQE run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VqeTrace {
    /// The measured objective per iteration (mean of the optimizer's
    /// evaluations; no extra circuits are spent on trace recording).
    pub energies: Vec<f64>,
    /// Cumulative circuits executed after each iteration.
    pub circuits: Vec<u64>,
    /// The final parameter vector.
    pub final_params: Vec<f64>,
}

impl VqeTrace {
    /// The number of completed iterations.
    pub fn iterations(&self) -> usize {
        self.energies.len()
    }

    /// The minimum measured energy over the run.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn best_energy(&self) -> f64 {
        assert!(!self.energies.is_empty(), "empty trace");
        self.energies.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// The mean of the last `tail_fraction` of the trace — a noise-robust
    /// "converged energy" estimate (the min would be biased optimistic
    /// under shot noise).
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty or `tail_fraction` is not in `(0, 1]`.
    pub fn converged_energy(&self, tail_fraction: f64) -> f64 {
        assert!(!self.energies.is_empty(), "empty trace");
        assert!(
            tail_fraction > 0.0 && tail_fraction <= 1.0,
            "tail fraction must lie in (0, 1]"
        );
        let n = self.energies.len();
        let k = ((n as f64 * tail_fraction).ceil() as usize).clamp(1, n);
        self.energies[n - k..].iter().sum::<f64>() / k as f64
    }

    /// Total circuits executed.
    pub fn total_circuits(&self) -> u64 {
        self.circuits.last().copied().unwrap_or(0)
    }
}

/// Anything that can evaluate the VQA objective at a parameter vector,
/// executing quantum circuits and metering their cost.
///
/// The baseline evaluator lives here ([`BaselineEvaluator`]); the JigSaw
/// and VarSaw evaluators live in the `varsaw` crate.
pub trait EnergyEvaluator {
    /// Measures the objective at `params`, executing circuits as needed.
    fn evaluate(&mut self, params: &[f64]) -> f64;

    /// Measures the objective at several parameter vectors — an SPSA ±
    /// probe pair, a restart population — in order.
    ///
    /// Implementations **must** be exactly equivalent to sequential
    /// [`EnergyEvaluator::evaluate`] calls (same values, same RNG
    /// advancement, same cost metering); the default simply loops.
    /// Executor-backed evaluators override this to dispatch the whole
    /// family through [`SimExecutor::prepare_batch`] /
    /// [`SimExecutor::run_batch`], which shares one compiled plan per
    /// circuit structure across the batch.
    fn evaluate_batch(&mut self, param_sets: &[&[f64]]) -> Vec<f64> {
        param_sets.iter().map(|p| self.evaluate(p)).collect()
    }

    /// Total circuits executed so far.
    fn circuits_executed(&self) -> u64;
}

/// Adapts an [`EnergyEvaluator`] to the optimizer-facing
/// [`BatchObjective`] seam ([`run_vqe`] drives optimizers through
/// [`Optimizer::step_batch`], so batch-capable evaluators see whole
/// probe families).
struct BatchAdapter<'a, E: ?Sized>(&'a mut E);

impl<E: EnergyEvaluator + ?Sized> BatchObjective for BatchAdapter<'_, E> {
    fn evaluate(&mut self, params: &[f64]) -> f64 {
        self.0.evaluate(params)
    }

    fn evaluate_batch(&mut self, param_sets: &[&[f64]]) -> Vec<f64> {
        self.0.evaluate_batch(param_sets)
    }
}

/// The paper's "Baseline": traditional VQA with Pauli-string commutation
/// and no measurement error mitigation. Optionally applies matrix-based
/// mitigation (MBM) to every group PMF (the Section 6.8 combination).
#[derive(Clone, Debug)]
pub struct BaselineEvaluator {
    ansatz: EfficientSu2,
    grouped: GroupedHamiltonian,
    executor: SimExecutor,
    mbm: bool,
}

impl BaselineEvaluator {
    /// Creates a baseline evaluator.
    ///
    /// # Panics
    ///
    /// Panics if the ansatz and Hamiltonian qubit counts differ.
    pub fn new(hamiltonian: &Hamiltonian, ansatz: EfficientSu2, executor: SimExecutor) -> Self {
        assert_eq!(
            ansatz.num_qubits(),
            hamiltonian.num_qubits(),
            "ansatz/Hamiltonian qubit mismatch"
        );
        BaselineEvaluator {
            ansatz,
            grouped: GroupedHamiltonian::new(hamiltonian),
            executor,
            mbm: false,
        }
    }

    /// Enables matrix-based measurement mitigation on every measured PMF.
    pub fn with_mbm(mut self, enabled: bool) -> Self {
        self.mbm = enabled;
        self
    }

    /// The grouped Hamiltonian (for cost analysis).
    pub fn grouped(&self) -> &GroupedHamiltonian {
        &self.grouped
    }

    /// Prepares the ansatz state for `params`, under the executor's
    /// [`Parallelism`](qsim::Parallelism) mode (hitting its plan cache).
    pub fn prepare(&mut self, params: &[f64]) -> Statevector {
        self.executor.prepare(&self.ansatz.circuit(params))
    }
}

impl BaselineEvaluator {
    /// Applies matrix-based mitigation when enabled.
    fn correct(&mut self, pmf: Pmf) -> Pmf {
        if self.mbm {
            let cal = self.executor.calibration(pmf.num_qubits());
            mbm_correct(&pmf, &cal)
        } else {
            pmf
        }
    }

    /// The measured energy of one prepared state: every group circuit
    /// dispatched as one executor batch (identical to running them one
    /// by one — see [`SimExecutor::run_batch`]).
    fn measure_prepared(&mut self, state: &Statevector) -> f64 {
        let jobs: Vec<BatchJob<'_>> = self
            .grouped
            .groups()
            .iter()
            // Measure the full register, as Qiskit-style VQE does.
            .map(|g| BatchJob::global(state, &g.basis))
            .collect();
        let pmfs: Vec<Pmf> = self
            .executor
            .run_batch(&jobs)
            .into_iter()
            .map(|pmf| self.correct(pmf))
            .collect();
        self.grouped.energy_from_pmfs(&pmfs)
    }
}

impl EnergyEvaluator for BaselineEvaluator {
    fn evaluate(&mut self, params: &[f64]) -> f64 {
        let state = self.prepare(params);
        self.measure_prepared(&state)
    }

    /// The SPSA ± pair (or any probe family) as one batch: ansatz states
    /// prepared through [`SimExecutor::prepare_batch`] against one cached
    /// plan, then each state's group circuits through the batched
    /// measurement dispatch, in probe order — exactly the sequential
    /// results, seed for seed.
    fn evaluate_batch(&mut self, param_sets: &[&[f64]]) -> Vec<f64> {
        let circuits: Vec<Circuit> = param_sets.iter().map(|p| self.ansatz.circuit(p)).collect();
        let states = self.executor.prepare_batch(&circuits);
        states
            .iter()
            .map(|state| self.measure_prepared(state))
            .collect()
    }

    fn circuits_executed(&self) -> u64 {
        self.executor.circuits_executed()
    }
}

/// Runs the VQE loop: repeatedly steps the optimizer against the
/// evaluator's objective until the iteration cap or circuit budget is hit.
///
/// # Examples
///
/// ```
/// use pauli::Hamiltonian;
/// use qnoise::DeviceModel;
/// use vqe::{run_vqe, BaselineEvaluator, EfficientSu2, Entanglement, SimExecutor, Spsa, VqeConfig};
///
/// let h = Hamiltonian::from_pairs(2, &[(-1.0, "ZZ"), (-0.4, "XI"), (-0.4, "IX")]);
/// let ansatz = EfficientSu2::new(2, 1, Entanglement::Full);
/// let exec = SimExecutor::new(DeviceModel::noiseless(2), 512, 3);
/// let init = ansatz.initial_parameters(1);
/// let mut eval = BaselineEvaluator::new(&h, ansatz, exec);
/// let mut spsa = Spsa::new(5);
/// let trace = run_vqe(&mut eval, &mut spsa, init, &VqeConfig { max_iterations: 50, max_circuits: None });
/// assert_eq!(trace.iterations(), 50);
/// assert!(trace.best_energy() < 0.0);
/// ```
pub fn run_vqe<E: EnergyEvaluator + ?Sized, O: Optimizer + ?Sized>(
    evaluator: &mut E,
    optimizer: &mut O,
    initial_params: Vec<f64>,
    config: &VqeConfig,
) -> VqeTrace {
    let mut params = initial_params;
    let mut trace = VqeTrace::default();
    for _ in 0..config.max_iterations {
        if let Some(budget) = config.max_circuits {
            if evaluator.circuits_executed() >= budget {
                break;
            }
        }
        // step_batch lets probe-family optimizers (SPSA's ± pair) hand
        // the evaluator whole batches; evaluate_batch implementations
        // are exactly equivalent to sequential evaluation, so traces are
        // unchanged seed for seed.
        let step = optimizer.step_batch(&mut params, &mut BatchAdapter(evaluator));
        trace.energies.push(step.mean_objective);
        trace.circuits.push(evaluator.circuits_executed());
    }
    trace.final_params = params;
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::Entanglement;
    use crate::optimizer::Spsa;
    use qnoise::DeviceModel;

    fn tfim2() -> Hamiltonian {
        Hamiltonian::from_pairs(2, &[(-1.0, "ZZ"), (-0.5, "XI"), (-0.5, "IX")])
    }

    #[test]
    fn noiseless_vqe_approaches_ground_energy() {
        // SPSA on a non-convex landscape can land in a local minimum for an
        // unlucky (init, perturbation) seed pair, so do what practitioners
        // do: a small multi-start, keeping the best restart.
        let h = tfim2();
        let e0 = h.ground_energy(3);
        let final_e = [(2u64, 11u64), (3, 5)]
            .iter()
            .map(|&(init_seed, spsa_seed)| {
                let ansatz = EfficientSu2::new(2, 2, Entanglement::Full);
                let exec = SimExecutor::new(DeviceModel::noiseless(2), 2048, 7);
                let init = ansatz.initial_parameters(init_seed);
                let mut eval = BaselineEvaluator::new(&h, ansatz, exec);
                let mut spsa = Spsa::new(spsa_seed);
                let trace = run_vqe(
                    &mut eval,
                    &mut spsa,
                    init,
                    &VqeConfig {
                        max_iterations: 600,
                        max_circuits: None,
                    },
                );
                trace.converged_energy(0.1)
            })
            .fold(f64::INFINITY, f64::min);
        assert!(final_e < e0 + 0.25, "converged {final_e} vs ground {e0}");
    }

    #[test]
    fn circuit_budget_stops_the_run() {
        let h = tfim2();
        let ansatz = EfficientSu2::new(2, 1, Entanglement::Full);
        let exec = SimExecutor::new(DeviceModel::noiseless(2), 64, 1);
        let init = ansatz.initial_parameters(0);
        let mut eval = BaselineEvaluator::new(&h, ansatz, exec);
        let groups = eval.grouped().num_groups() as u64;
        let mut spsa = Spsa::new(2);
        let trace = run_vqe(
            &mut eval,
            &mut spsa,
            init,
            &VqeConfig {
                max_iterations: 10_000,
                max_circuits: Some(groups * 20),
            },
        );
        assert!(trace.iterations() < 10_000);
        // Budget can only be overshot by one iteration's worth of circuits.
        assert!(trace.total_circuits() <= groups * 20 + groups * 2);
    }

    #[test]
    fn noisy_vqe_reads_higher_than_ideal_at_same_params() {
        // Measurement error biases the energy estimate upward for a
        // Hamiltonian whose ground state has strong Z correlations.
        let h = Hamiltonian::from_pairs(2, &[(-1.0, "ZZ")]);
        let ansatz = EfficientSu2::new(2, 1, Entanglement::Full);
        let params = vec![0.0; ansatz.num_parameters()];
        let mut ideal = BaselineEvaluator::new(
            &h,
            ansatz.clone(),
            SimExecutor::exact(DeviceModel::noiseless(2), 1),
        );
        let mut noisy = BaselineEvaluator::new(
            &h,
            ansatz,
            SimExecutor::exact(DeviceModel::uniform(2, 0.08), 1),
        );
        assert!(noisy.evaluate(&params) > ideal.evaluate(&params) + 0.1);
    }

    #[test]
    fn mbm_corrects_known_readout_noise() {
        let h = Hamiltonian::from_pairs(2, &[(-1.0, "ZZ")]);
        let ansatz = EfficientSu2::new(2, 1, Entanglement::Full);
        let params = vec![0.0; ansatz.num_parameters()];
        let dev = DeviceModel::uniform(2, 0.08);
        let mut plain =
            BaselineEvaluator::new(&h, ansatz.clone(), SimExecutor::exact(dev.clone(), 1));
        let mut with_mbm =
            BaselineEvaluator::new(&h, ansatz, SimExecutor::exact(dev, 1)).with_mbm(true);
        let e_plain = plain.evaluate(&params);
        let e_mbm = with_mbm.evaluate(&params);
        // Without crosstalk the calibration is exact, so MBM fully
        // recovers the ideal value of −1.
        assert!((e_mbm + 1.0).abs() < 1e-9, "MBM energy {e_mbm}");
        assert!(e_plain > -0.9);
    }

    #[test]
    fn converged_energy_uses_the_tail() {
        let trace = VqeTrace {
            energies: vec![10.0, 10.0, 1.0, 1.0],
            circuits: vec![1, 2, 3, 4],
            final_params: vec![],
        };
        assert_eq!(trace.converged_energy(0.5), 1.0);
        assert_eq!(trace.best_energy(), 1.0);
    }
}
