//! Fault-seam coverage for `SimExecutor`: injected transport faults
//! surface as typed [`PrepareError`] values (never panics), a failed
//! session never leaks a poisoned state into results, and an executor
//! that saw a failure stays usable — the properties the `sched`
//! supervisor's retry ladder leans on.

use qnoise::DeviceModel;
use qsim::{Circuit, FaultInjection, FaultSchedule, Sharding, TransportMode};
use vqe::SimExecutor;

fn ansatz(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.ry(q, 0.3 + q as f64);
    }
    for q in 1..n {
        c.cx(q - 1, q);
    }
    c
}

fn transports() -> Vec<TransportMode> {
    vec![TransportMode::Local, TransportMode::Channel]
}

#[test]
fn injected_kill_surfaces_typed_and_executor_recovers() {
    for transport in transports() {
        let mut exec = SimExecutor::new(DeviceModel::noiseless(5), 64, 3)
            .with_sharding(Sharding::Shards(4))
            .with_transport(transport)
            .with_fault_schedule(FaultSchedule::new(11, 1000, 0), 0);
        let err = exec
            .try_prepare(&ansatz(5))
            .expect_err("certain-kill schedule must fail");
        assert!(
            err.transport().is_some(),
            "{}: expected a transport error, got {err}",
            transport.name()
        );
        // The poisoned state died inside the executor; a fault-free
        // retry on the same executor works and matches the reference.
        let mut clean = exec.clone().with_fault_schedule(FaultSchedule::none(), 0);
        let mut reference = SimExecutor::new(DeviceModel::noiseless(5), 64, 3);
        assert_eq!(
            clean.try_prepare(&ansatz(5)).unwrap().amplitudes(),
            reference.prepare(&ansatz(5)).amplitudes(),
            "{}: recovery must be bit-identical",
            transport.name()
        );
    }
}

#[test]
fn explicit_kill_keeps_failing_typed_never_panics() {
    // Satellite coverage: every entry point after a failed session keeps
    // returning typed errors — the executor never wedges into a panic.
    for transport in transports() {
        let mut exec = SimExecutor::new(DeviceModel::noiseless(5), 64, 3)
            .with_sharding(Sharding::Shards(4))
            .with_transport(transport)
            .with_fault_schedule(FaultSchedule::new(5, 1000, 0), 0);
        for _ in 0..3 {
            let err = exec.try_prepare(&ansatz(5)).unwrap_err();
            assert!(err.transport().is_some(), "{}: {err}", transport.name());
        }
        let errs = exec
            .try_prepare_batch(&[ansatz(5), ansatz(5)])
            .expect_err("batched prepares fail typed too");
        assert!(errs.transport().is_some(), "{}", transport.name());
    }
}

#[test]
fn fault_schedule_draws_are_reproducible_per_stream() {
    // Same (schedule, stream): identical outcomes. The supervisor's
    // retry determinism hangs on this.
    let run = |stream: u64| -> Vec<bool> {
        let mut exec = SimExecutor::new(DeviceModel::noiseless(5), 64, 3)
            .with_sharding(Sharding::Shards(4))
            .with_fault_schedule(FaultSchedule::new(17, 400, 0), stream);
        (0..12)
            .map(|_| exec.try_prepare(&ansatz(5)).is_ok())
            .collect()
    };
    assert_eq!(run(0), run(0));
    assert_eq!(run(9), run(9));
    // Streams draw independently: with 12 sessions at 40% kill, two
    // streams agreeing everywhere is astronomically unlikely for this
    // fixed seed — checked here so a stream-ignoring regression trips.
    assert_ne!(run(0), run(9));
}

#[test]
fn batch_draws_match_sequential_draws() {
    // prepare_batch assigns session indices up front, so the faults it
    // draws are exactly those of sequential prepares — threaded or not.
    let outcomes = |batched: bool| -> Vec<bool> {
        let mut exec = SimExecutor::new(DeviceModel::noiseless(5), 64, 3)
            .with_sharding(Sharding::Shards(4))
            .with_fault_schedule(FaultSchedule::new(23, 500, 0), 1);
        let circuits = vec![ansatz(5); 8];
        if batched {
            match exec.try_prepare_batch(&circuits) {
                Ok(_) => vec![true; 8],
                // The batch reports the first failure in circuit order;
                // recompute per-entry outcomes from a fresh executor.
                Err(_) => {
                    let mut seq = SimExecutor::new(DeviceModel::noiseless(5), 64, 3)
                        .with_sharding(Sharding::Shards(4))
                        .with_fault_schedule(FaultSchedule::new(23, 500, 0), 1);
                    circuits
                        .iter()
                        .map(|c| seq.try_prepare(c).is_ok())
                        .collect()
                }
            }
        } else {
            circuits
                .iter()
                .map(|c| exec.try_prepare(c).is_ok())
                .collect()
        }
    };
    assert_eq!(outcomes(true), outcomes(false));
}

#[test]
fn fault_free_schedule_is_bit_identical_to_no_schedule() {
    let mut plain =
        SimExecutor::new(DeviceModel::noiseless(5), 64, 3).with_sharding(Sharding::Shards(4));
    let mut scheduled = SimExecutor::new(DeviceModel::noiseless(5), 64, 3)
        .with_sharding(Sharding::Shards(4))
        .with_fault_schedule(FaultSchedule::new(31, 0, 0), 7);
    assert_eq!(
        plain.prepare(&ansatz(5)).amplitudes(),
        scheduled.prepare(&ansatz(5)).amplitudes()
    );
}

#[test]
fn explicit_fault_injection_still_works_via_prepare() {
    // The pre-schedule hook stays available: with_fault on the state is
    // mirrored by the scheduled draw path producing the same injection.
    let mut exec = SimExecutor::new(DeviceModel::noiseless(5), 64, 3)
        .with_sharding(Sharding::Shards(4))
        .with_transport(TransportMode::Channel)
        .with_fault_schedule(FaultSchedule::new(1, 1000, 0), 0);
    let err = exec.try_prepare(&ansatz(5)).unwrap_err();
    let qsim::TransportError::Disconnected { rank, .. } =
        err.transport().expect("transport error").clone()
    else {
        panic!("expected a disconnect, got {err}");
    };
    assert!(rank < 4);
    // Unsharded preparation opens no transport session: the same
    // schedule can never fault it.
    let mut dense = SimExecutor::new(DeviceModel::noiseless(5), 64, 3)
        .with_fault_schedule(FaultSchedule::new(1, 1000, 0), 0);
    assert!(dense.try_prepare(&ansatz(5)).is_ok());
    let _ = FaultInjection::none(); // referenced: the hook type stays public
}
