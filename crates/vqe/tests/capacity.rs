//! End-to-end coverage of the fallible allocation path: every execution
//! tier of [`SimExecutor`] — serial, threaded, and sharded — must surface
//! a state that does not fit as a typed [`vqe::PrepareError::Capacity`]
//! through `try_prepare` / `try_prepare_batch`, never by aborting the
//! process. This is the admission-control seam `sched::JobQueue` branches
//! on.

use qnoise::DeviceModel;
use qsim::{CapacityError, Circuit};
use vqe::{Parallelism, PrepareError, Sharding, SimExecutor};

/// Unwraps the capacity arm — these tests never hit a transport failure.
fn capacity(err: &PrepareError) -> &CapacityError {
    err.capacity()
        .unwrap_or_else(|| panic!("expected a capacity error, got {err}"))
}

/// Qubit count past the dense 30-qubit ceiling (a 16 GiB plane); every
/// tier must refuse it with a typed error.
const TOO_BIG: usize = 33;

fn oversized() -> Circuit {
    let mut c = Circuit::new(TOO_BIG);
    c.h(0).cx(0, 1);
    c
}

fn small() -> Circuit {
    let mut c = Circuit::new(3);
    c.h(0).cx(0, 1).cx(1, 2);
    c
}

fn tiers() -> Vec<(&'static str, SimExecutor)> {
    let exec = |mode, sharding| {
        SimExecutor::new(DeviceModel::noiseless(3), 64, 11)
            .with_parallelism(mode)
            .with_sharding(sharding)
    };
    vec![
        ("serial", exec(Parallelism::Serial, Sharding::Off)),
        ("threaded", exec(Parallelism::Threads(4), Sharding::Off)),
        ("sharded", exec(Parallelism::Serial, Sharding::Shards(4))),
        (
            "sharded+threaded",
            exec(Parallelism::Threads(4), Sharding::Shards(4)),
        ),
    ]
}

#[test]
fn every_tier_surfaces_capacity_errors_as_typed_values() {
    for (name, mut exec) in tiers() {
        let err = exec
            .try_prepare(&oversized())
            .expect_err("oversized circuit must be refused");
        assert_eq!(capacity(&err).num_qubits(), TOO_BIG, "tier {name}");
        assert_eq!(capacity(&err).bytes(), 16u128 << TOO_BIG, "tier {name}");
        // The error is recoverable: the same executor keeps working.
        let state = exec
            .try_prepare(&small())
            .unwrap_or_else(|e| panic!("tier {name}: small circuit refused: {e}"));
        assert_eq!(state.num_qubits(), 3, "tier {name}");
    }
}

#[test]
fn batch_surfaces_the_first_capacity_error_in_circuit_order() {
    for (name, mut exec) in tiers() {
        let err = exec
            .try_prepare_batch(&[small(), oversized(), small()])
            .expect_err("batch with an oversized member must be refused");
        assert_eq!(capacity(&err).num_qubits(), TOO_BIG, "tier {name}");
        // And an all-fitting batch still succeeds afterwards.
        let states = exec
            .try_prepare_batch(&[small(), small()])
            .unwrap_or_else(|e| panic!("tier {name}: fitting batch refused: {e}"));
        assert_eq!(states.len(), 2, "tier {name}");
    }
}

#[test]
fn capacity_error_reports_the_requested_footprint() {
    let mut exec = SimExecutor::new(DeviceModel::noiseless(3), 64, 11);
    let err = exec.try_prepare(&Circuit::new(40)).unwrap_err();
    assert_eq!(capacity(&err).num_qubits(), 40);
    assert_eq!(capacity(&err).bytes(), 16u128 << 40);
    let msg = err.to_string();
    assert!(msg.contains("40"), "error message names the size: {msg}");
}

#[test]
fn infallible_paths_still_panic_with_the_typed_message() {
    let result = std::panic::catch_unwind(|| {
        let mut exec = SimExecutor::new(DeviceModel::noiseless(3), 64, 11);
        exec.prepare(&oversized());
    });
    let panic = result.expect_err("prepare must panic on oversized circuits");
    let msg = panic.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("33"), "panic carries the typed message: {msg}");
}
